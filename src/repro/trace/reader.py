"""Trace loading, manifest validation, and per-run summaries.

A trace is a JSONL file (or an in-memory list of event dicts) produced by
:class:`~repro.obs.events.JsonlEventSink`.  Traces written through the CLI
open with a ``manifest`` line; traces written directly by tests or by the
golden-trace generator may be manifest-less -- both are valid input, but a
*present* manifest is validated (it must carry a schema version this
library understands) before anything else is read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.events import AnyRound, event_to_round
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION

__all__ = ["TraceReader", "TraceSummary", "format_summary", "load_events"]

#: Event types reconstructible through the round codec.
ROUND_EVENT_TYPES = (
    "stage1.round",
    "stage2.transfer_round",
    "stage2.invitation_round",
)

#: Message-causality event types emitted by the simulation kernel.
MESSAGE_EVENT_TYPES = ("msg.sent", "msg.delivered", "msg.dropped")


def load_events(source: Union[str, Iterable[str]]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace into a list of event dicts.

    ``source`` is a path or any iterable of JSON lines.  Blank lines are
    skipped; a malformed line raises :class:`ObservabilityError` with its
    1-based line number, so a truncated or corrupted trace fails loudly
    instead of silently dropping events.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            return _parse_lines(stream, source)
    return _parse_lines(source, "<stream>")


def _parse_lines(lines: Iterable[str], origin: str) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            event = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{origin}:{lineno}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(event, dict) or "event" not in event:
            raise ObservabilityError(
                f"{origin}:{lineno}: not an event object "
                f"(expected a JSON object with an 'event' field)"
            )
        events.append(event)
    return events


@dataclass(frozen=True)
class TraceSummary:
    """Per-run digest computed by :meth:`TraceReader.summary`.

    Attributes
    ----------
    source:
        Where the trace came from (path or ``"<stream>"``).
    num_events / schema_version / seed:
        Stream size and manifest header fields (``None`` without one).
    rounds_stage1 / rounds_transfer / rounds_invitation:
        Recorded algorithm rounds per phase; their sum is the run's
        rounds-to-convergence.
    per_seller:
        ``channel -> {"proposals", "applications", "accepted",
        "rejected", "evicted"}`` accounting aggregated over all rounds.
    welfare_trajectory:
        ``(label, welfare)`` pairs in run order (stage1 / phase1 / phase2
        from ``two_stage.result``, final welfare from a distributed
        ``run_end``) -- the convergence trajectory of Section IV's plots.
    mwis_wall_s / total_wall_s / mwis_share:
        Wall-clock spent in MWIS spans, in root spans, and their ratio
        (zeros when the trace carries no spans).
    messages_sent / messages_delivered / messages_dropped:
        Kernel message-causality totals (zeros for centralised traces).
    drop_reasons:
        ``reason -> count`` over ``msg.dropped`` events.
    slots:
        Simulated slots (from ``distributed.run_end``; ``None`` otherwise).
    """

    source: str
    num_events: int
    schema_version: Optional[int]
    seed: Optional[int]
    rounds_stage1: int
    rounds_transfer: int
    rounds_invitation: int
    per_seller: Mapping[int, Mapping[str, int]]
    welfare_trajectory: Tuple[Tuple[str, float], ...]
    mwis_wall_s: float
    total_wall_s: float
    mwis_share: float
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    drop_reasons: Mapping[str, int] = field(default_factory=dict)
    slots: Optional[int] = None

    @property
    def rounds_to_convergence(self) -> int:
        return self.rounds_stage1 + self.rounds_transfer + self.rounds_invitation


class TraceReader:
    """Validated access to one trace's events, rounds, and summary.

    Parameters
    ----------
    events:
        Parsed event dicts in stream order.
    source:
        Origin label used in summaries and error messages.

    A leading ``manifest`` event is validated on construction: its
    ``schema_version`` must be an integer no newer than this library's
    :data:`~repro.obs.manifest.MANIFEST_SCHEMA_VERSION`.  Manifest-less
    traces (e.g. the committed golden trace) are accepted as-is.
    """

    def __init__(
        self, events: List[Dict[str, Any]], source: str = "<stream>"
    ) -> None:
        self.events = events
        self.source = source
        self.manifest: Optional[Dict[str, Any]] = None
        if events and events[0].get("event") == "manifest":
            self.manifest = events[0]
            self._validate_manifest(self.manifest)

    @classmethod
    def from_file(cls, path: str) -> "TraceReader":
        return cls(load_events(path), source=path)

    def _validate_manifest(self, manifest: Dict[str, Any]) -> None:
        version = manifest.get("schema_version")
        if not isinstance(version, int):
            raise ObservabilityError(
                f"{self.source}: manifest schema_version must be an "
                f"integer, got {version!r}"
            )
        if version > MANIFEST_SCHEMA_VERSION:
            raise ObservabilityError(
                f"{self.source}: manifest schema_version {version} is newer "
                f"than this library understands "
                f"(max {MANIFEST_SCHEMA_VERSION}); upgrade to read this trace"
            )
        for inner in self.events[1:]:
            if inner.get("event") == "manifest":
                raise ObservabilityError(
                    f"{self.source}: multiple manifest lines (corrupt "
                    f"concatenation of two traces?)"
                )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def of_type(self, event_type: str) -> List[Dict[str, Any]]:
        """Events whose ``"event"`` field equals ``event_type``."""
        return [e for e in self.events if e.get("event") == event_type]

    def rounds(self) -> List[AnyRound]:
        """Reconstruct the recorded algorithm rounds, in stream order.

        Uses the same :func:`~repro.obs.events.event_to_round` codec the
        writer used, so reconstruction is exact: the returned dataclasses
        compare equal to the originals.
        """
        return [
            event_to_round(event)
            for event in self.events
            if event.get("event") in ROUND_EVENT_TYPES
        ]

    def messages(self) -> List[Dict[str, Any]]:
        """The kernel's ``msg.*`` causality events, in stream order."""
        return [
            e for e in self.events if e.get("event") in MESSAGE_EVENT_TYPES
        ]

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summary(self) -> TraceSummary:
        """Compute the per-run digest (see :class:`TraceSummary`)."""
        per_seller: Dict[int, Dict[str, int]] = {}

        def seller(channel: int) -> Dict[str, int]:
            return per_seller.setdefault(
                int(channel),
                {
                    "proposals": 0,
                    "applications": 0,
                    "accepted": 0,
                    "rejected": 0,
                    "evicted": 0,
                },
            )

        rounds_stage1 = rounds_transfer = rounds_invitation = 0
        welfare: List[Tuple[str, float]] = []
        mwis_wall = total_wall = 0.0
        sent = delivered = dropped = 0
        drop_reasons: Dict[str, int] = {}
        slots: Optional[int] = None

        for event in self.events:
            kind = event.get("event")
            if kind == "stage1.round":
                rounds_stage1 += 1
                for channel, buyers in event.get("proposals", {}).items():
                    seller(channel)["proposals"] += len(buyers)
                for _buyer, channel in event.get("evictions", ()):
                    seller(channel)["evicted"] += 1
                for _buyer, channel in event.get("rejections", ()):
                    seller(channel)["rejected"] += 1
            elif kind == "stage2.transfer_round":
                rounds_transfer += 1
                for channel, buyers in event.get("applications", {}).items():
                    seller(channel)["applications"] += len(buyers)
                # Accepted transfers/invitations are (buyer, from_channel,
                # to_channel) triples; credit the gaining seller.
                for _buyer, _from, channel in event.get("accepted", ()):
                    seller(channel)["accepted"] += 1
                for _buyer, channel in event.get("rejected", ()):
                    seller(channel)["rejected"] += 1
            elif kind == "stage2.invitation_round":
                rounds_invitation += 1
                for _buyer, _from, channel in event.get("accepted", ()):
                    seller(channel)["accepted"] += 1
                for channel, _buyer in event.get("declined", ()):
                    seller(channel)["rejected"] += 1
            elif kind == "two_stage.result":
                for label, key in (
                    ("stage1", "welfare_stage1"),
                    ("phase1", "welfare_phase1"),
                    ("phase2", "welfare_phase2"),
                ):
                    if key in event:
                        welfare.append((label, float(event[key])))
            elif kind == "distributed.run_end":
                if "social_welfare" in event:
                    welfare.append(("final", float(event["social_welfare"])))
                if "slots" in event:
                    slots = int(event["slots"])
            elif kind == "span":
                wall = float(event.get("wall_s", 0.0))
                if "mwis" in str(event.get("name", "")):
                    mwis_wall += wall
                if event.get("depth") == 0:
                    total_wall += wall
            elif kind == "msg.sent":
                sent += 1
            elif kind == "msg.delivered":
                delivered += 1
            elif kind == "msg.dropped":
                dropped += 1
                reason = str(event.get("reason", "unknown"))
                drop_reasons[reason] = drop_reasons.get(reason, 0) + 1

        manifest = self.manifest or {}
        return TraceSummary(
            source=self.source,
            num_events=len(self.events),
            schema_version=manifest.get("schema_version"),
            seed=manifest.get("seed"),
            rounds_stage1=rounds_stage1,
            rounds_transfer=rounds_transfer,
            rounds_invitation=rounds_invitation,
            per_seller=per_seller,
            welfare_trajectory=tuple(welfare),
            mwis_wall_s=mwis_wall,
            total_wall_s=total_wall,
            mwis_share=(mwis_wall / total_wall) if total_wall > 0.0 else 0.0,
            messages_sent=sent,
            messages_delivered=delivered,
            messages_dropped=dropped,
            drop_reasons=drop_reasons,
            slots=slots,
        )


def format_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as the CLI's human-readable text."""
    lines = [f"trace: {summary.source} ({summary.num_events} events)"]
    if summary.schema_version is not None:
        seed = "-" if summary.seed is None else summary.seed
        lines.append(
            f"manifest: schema v{summary.schema_version}, seed {seed}"
        )
    else:
        lines.append("manifest: (none)")
    lines.append(
        f"rounds: {summary.rounds_to_convergence} to convergence "
        f"(stage1 {summary.rounds_stage1}, transfer {summary.rounds_transfer}, "
        f"invitation {summary.rounds_invitation})"
    )
    if summary.slots is not None:
        lines.append(f"slots: {summary.slots}")
    for channel in sorted(summary.per_seller):
        stats = summary.per_seller[channel]
        lines.append(
            f"  seller {channel}: proposals={stats['proposals']} "
            f"applications={stats['applications']} "
            f"accepted={stats['accepted']} rejected={stats['rejected']} "
            f"evicted={stats['evicted']}"
        )
    if summary.welfare_trajectory:
        steps = " -> ".join(
            f"{label}={value:g}" for label, value in summary.welfare_trajectory
        )
        lines.append(f"welfare: {steps}")
    if summary.total_wall_s > 0.0:
        lines.append(
            f"mwis time share: {summary.mwis_share:.1%} "
            f"({summary.mwis_wall_s:.6f}s of {summary.total_wall_s:.6f}s)"
        )
    if summary.messages_sent or summary.messages_dropped:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(summary.drop_reasons.items())
        )
        lines.append(
            f"messages: sent={summary.messages_sent} "
            f"delivered={summary.messages_delivered} "
            f"dropped={summary.messages_dropped}"
            + (f" ({reasons})" if reasons else "")
        )
    return "\n".join(lines)
