"""Trace alignment and first-divergence reporting.

Two runs of the same seeded workload emit byte-identical event streams
until the point where their behaviour actually differs -- determinism is
what the parity and golden-trace suites already lock down.  Diffing is
therefore *positional*: canonicalize both streams (drop the volatile
envelope that legitimately differs between runs) and report the first
index where they disagree, annotated with the causal message chain that
leads into the divergence.

Canonicalization drops:

* ``manifest`` lines (timestamps, library versions, CLI paths);
* ``span`` events (wall/CPU timings are machine-dependent);
* volatile keys on surviving events (``wall_s``, ``cpu_s``, ``start_s``).

With ``rounds_only=True`` everything except the three round events is
dropped too, which aligns a CLI-produced trace (manifest, lifecycle and
message events included) against the committed golden trace (rounds
only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.trace.causality import CausalGraph, format_chain
from repro.trace.reader import ROUND_EVENT_TYPES

__all__ = ["TraceDiff", "canonicalize_events", "diff_traces", "format_diff"]

#: Event types whose presence/absence is run-environment, not behaviour.
_ENVELOPE_EVENT_TYPES = ("manifest", "span")

#: Keys that legitimately differ between behaviourally identical runs.
_VOLATILE_KEYS = ("wall_s", "cpu_s", "start_s")


def canonicalize_events(
    events: List[Dict[str, Any]], rounds_only: bool = False
) -> Tuple[List[Dict[str, Any]], List[int]]:
    """Reduce a stream to its behavioural content.

    Returns the canonical events plus, for each, its index in the
    original stream (so divergence positions can be mapped back to raw
    trace lines and nearby causal context).
    """
    canonical: List[Dict[str, Any]] = []
    origins: List[int] = []
    for index, event in enumerate(events):
        kind = event.get("event")
        if kind in _ENVELOPE_EVENT_TYPES:
            continue
        if rounds_only and kind not in ROUND_EVENT_TYPES:
            continue
        stripped = {
            key: value
            for key, value in event.items()
            if key not in _VOLATILE_KEYS
        }
        canonical.append(stripped)
        origins.append(index)
    return canonical, origins


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of :func:`diff_traces`.

    ``diverged`` is ``False`` when the canonical streams are identical.
    Otherwise ``index`` is the first differing canonical position,
    ``left_event`` / ``right_event`` are the events there (``None`` when
    that side's stream already ended), and ``left_chain`` /
    ``right_chain`` carry the causal message chain leading into the
    divergence on each side (empty for traces without message events).
    """

    diverged: bool
    left_label: str
    right_label: str
    left_total: int
    right_total: int
    index: Optional[int] = None
    left_event: Optional[Dict[str, Any]] = None
    right_event: Optional[Dict[str, Any]] = None
    differing_keys: Tuple[str, ...] = ()
    slot: Optional[int] = None
    round_index: Optional[int] = None
    left_chain: Tuple[Dict[str, Any], ...] = ()
    right_chain: Tuple[Dict[str, Any], ...] = ()
    left_graph: Optional[CausalGraph] = field(default=None, compare=False)
    right_graph: Optional[CausalGraph] = field(default=None, compare=False)


def _chain_into(
    raw_events: List[Dict[str, Any]],
    graph: CausalGraph,
    divergent: Optional[Dict[str, Any]],
    raw_index: Optional[int],
) -> Tuple[Dict[str, Any], ...]:
    """Causal chain explaining the divergence on one side.

    The divergent event itself when it is a traced message; otherwise the
    last message sent before the divergence point -- the most recent
    causal activity leading into it.
    """
    if divergent is not None and divergent.get("event", "").startswith("msg."):
        msg_id = divergent.get("id")
        if msg_id is not None and int(msg_id) in graph.sent:
            return tuple(graph.chain(int(msg_id)))
    if raw_index is None:
        raw_index = len(raw_events)
    for event in reversed(raw_events[:raw_index]):
        if event.get("event") == "msg.sent":
            return tuple(graph.chain(int(event["id"])))
    return ()


def diff_traces(
    left_events: List[Dict[str, Any]],
    right_events: List[Dict[str, Any]],
    rounds_only: bool = False,
    left_label: str = "left",
    right_label: str = "right",
) -> TraceDiff:
    """Align two traces and report the first behavioural divergence."""
    left, left_origins = canonicalize_events(left_events, rounds_only)
    right, right_origins = canonicalize_events(right_events, rounds_only)

    index = None
    for position, (a, b) in enumerate(zip(left, right)):
        if a != b:
            index = position
            break
    if index is None:
        if len(left) == len(right):
            return TraceDiff(
                diverged=False,
                left_label=left_label,
                right_label=right_label,
                left_total=len(left),
                right_total=len(right),
            )
        index = min(len(left), len(right))

    left_event = left[index] if index < len(left) else None
    right_event = right[index] if index < len(right) else None
    differing: Tuple[str, ...] = ()
    if left_event is not None and right_event is not None:
        differing = tuple(
            sorted(
                key
                for key in set(left_event) | set(right_event)
                if left_event.get(key) != right_event.get(key)
            )
        )

    def _field(name: str) -> Optional[int]:
        for event in (left_event, right_event):
            if event is not None and event.get(name) is not None:
                return int(event[name])
        return None

    left_graph = CausalGraph(left_events)
    right_graph = CausalGraph(right_events)
    left_raw_index = left_origins[index] if index < len(left) else None
    right_raw_index = right_origins[index] if index < len(right) else None
    return TraceDiff(
        diverged=True,
        left_label=left_label,
        right_label=right_label,
        left_total=len(left),
        right_total=len(right),
        index=index,
        left_event=left_event,
        right_event=right_event,
        differing_keys=differing,
        slot=_field("slot"),
        round_index=_field("round"),
        left_chain=_chain_into(
            left_events, left_graph, left_event, left_raw_index
        ),
        right_chain=_chain_into(
            right_events, right_graph, right_event, right_raw_index
        ),
        left_graph=left_graph,
        right_graph=right_graph,
    )


def format_diff(diff: TraceDiff) -> str:
    """Render a :class:`TraceDiff` as the CLI's human-readable report."""
    if not diff.diverged:
        return (
            f"no divergence: {diff.left_total} canonical events identical "
            f"({diff.left_label} vs {diff.right_label})"
        )
    lines = [
        f"divergence at canonical event {diff.index} "
        f"({diff.left_label}: {diff.left_total} events, "
        f"{diff.right_label}: {diff.right_total} events)"
    ]
    if diff.round_index is not None:
        lines.append(f"first divergent round: {diff.round_index}")
    elif diff.slot is not None:
        lines.append(f"first divergent slot: {diff.slot}")
    for label, event in (
        (diff.left_label, diff.left_event),
        (diff.right_label, diff.right_event),
    ):
        if event is None:
            lines.append(f"  {label}: (stream ended)")
        else:
            lines.append(f"  {label}: {event}")
    if diff.differing_keys:
        lines.append(f"  differing keys: {', '.join(diff.differing_keys)}")
    for label, chain, graph in (
        (diff.left_label, diff.left_chain, diff.left_graph),
        (diff.right_label, diff.right_chain, diff.right_graph),
    ):
        if chain and graph is not None:
            lines.append(f"causal chain into the divergence ({label}):")
            lines.append(format_chain(graph, list(chain)))
    return "\n".join(lines)
