"""Tolerant tail-following for growing trace JSONL files.

:func:`repro.trace.reader.load_events` is deliberately strict: a
malformed line in a *finished* trace is corruption and raises.  A trace
that is still being written is different -- the final line may be torn
(the writer's buffered batch not yet newline-terminated, or a crash
mid-write), and new lines keep arriving.  :class:`TraceFollower` handles
that case for the ``repro watch`` console:

* :meth:`~TraceFollower.poll` returns only the events that arrived since
  the previous poll, reading from a remembered byte offset.
* Bytes after the last ``\\n`` are retained, not parsed: a torn final
  line is invisible until its newline lands (the
  :class:`~repro.obs.events.JsonlEventSink` writes whole-line batches,
  so in practice only an unflushed or crashed tail is ever partial).
* A *complete* line that still fails to parse is skipped and counted in
  :attr:`~TraceFollower.skipped` rather than raising -- a live console
  must not die because one record was mangled.
* If the file shrinks (truncated and rewritten), the follower restarts
  from the top rather than reading garbage from a stale offset.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from repro.errors import ObservabilityError

__all__ = ["TraceFollower", "read_events_tolerant"]


class TraceFollower:
    """Incremental reader of a growing JSONL trace.

    Parameters
    ----------
    path:
        The trace file.  It may not exist yet; polls return nothing
        until it does.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        #: Bytes after the last newline seen, carried between polls.
        self._partial = b""
        #: Complete-but-unparseable lines skipped so far.
        self.skipped = 0
        #: Total events returned so far.
        self.events_read = 0

    def poll(self) -> List[Dict[str, Any]]:
        """Return events appended since the last poll (possibly none)."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self._offset:
            # Truncated/rewritten underneath us: start over.
            self._offset = 0
            self._partial = b""
        if size == self._offset:
            return []
        with open(self.path, "rb") as stream:
            stream.seek(self._offset)
            chunk = stream.read()
        self._offset += len(chunk)
        data = self._partial + chunk
        head, sep, tail = data.rpartition(b"\n")
        if not sep:
            # No newline yet: everything is one growing torn line.
            self._partial = data
            return []
        self._partial = tail
        events: List[Dict[str, Any]] = []
        for raw in head.split(b"\n"):
            if not raw.strip():
                continue
            try:
                event = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.skipped += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                self.skipped += 1
        self.events_read += len(events)
        return events


def read_events_tolerant(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """One-shot tolerant read: ``(events, skipped_line_count)``.

    Unlike :func:`repro.trace.reader.load_events`, a torn final line or
    a mangled record is skipped (and counted), not fatal.  Raises
    :class:`~repro.errors.ObservabilityError` only when the file itself
    cannot be opened.
    """
    follower = TraceFollower(path)
    if not os.path.exists(path):
        raise ObservabilityError(f"trace file not found: {path}")
    events = follower.poll()
    # A file with no trailing newline leaves its last line in the
    # partial buffer; for a one-shot read, try to parse it anyway.
    if follower._partial.strip():
        try:
            event = json.loads(follower._partial.decode("utf-8"))
            if isinstance(event, dict):
                events.append(event)
            else:
                follower.skipped += 1
        except (ValueError, UnicodeDecodeError):
            follower.skipped += 1
    return events, follower.skipped
