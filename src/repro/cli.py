"""Command-line interface: ``spectrum-matching <command>``.

Commands
--------
``fig6`` / ``fig7`` / ``fig8``
    Regenerate one panel of the corresponding paper figure and print the
    series as a table (optionally CSV).
``toy``
    Replay the paper's toy example (Figs. 1-2) with the full
    round-by-round trace.
``counterexample``
    Demonstrate Section III-D: a Nash-stable output that is
    pairwise-blocked and not buyer-optimal.
``distributed``
    Run the message-level protocol (Section IV) on a random market and
    compare transition policies.
``chaos``
    Run the protocol under injected faults -- agent crash/restart
    schedules, network partitions, deadlines with graceful degradation
    (see the Fault model section of ``docs/architecture.md``).
``solve``
    Run any registered solver (``--solver NAME``) on a scenario or a
    random market and print its canonical report.
``solvers``
    List the solver registry (``solvers list``), optionally filtered by
    capability.
``run``
    Execute a declarative :class:`~repro.run.spec.RunSpec` JSON file --
    the spec any run subcommand prints with ``--dry-run``.  One spec file
    replaces an arbitrarily flag-heavy invocation and executes through
    the identical Session path.
``trace``
    Offline trace analysis: ``summarize`` one JSONL trace, ``diff`` two
    traces to the first behavioural divergence (with its causal message
    chain), ``export`` to Chrome trace JSON or OpenMetrics text, and
    ``causality`` to explain one agent's outcome as message chains.

Every run command additionally accepts ``--trace-out PATH`` (stream a
JSONL event trace with a run manifest), ``--metrics`` (print a metrics
and span summary after the command's normal output) and ``--dry-run``
(print the equivalent RunSpec JSON instead of executing); see the
Observability and Run model sections of ``docs/architecture.md``.

Internally every run subcommand is a thin adapter: parsed flags become a
:class:`~repro.run.spec.RunSpec` (see :func:`_spec_from_args`) and the
command bodies consume the spec, so ``repro toy`` and ``repro run
toy-spec.json`` execute byte-identically.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import sys
from typing import Optional, Sequence, Tuple

from repro.analysis.paper_figures import figure_spec, run_figure
from repro.analysis.reporting import format_experiment_rows, rows_to_csv
from repro.core.stability import (
    is_nash_stable,
    is_pairwise_stable,
    pairwise_blocking_pairs,
)
from repro.obs import format_metrics_summary, get_recorder, use_recorder
from repro.run.session import (
    build_market,
    build_profiler,
    build_recorder,
    build_slo_engine,
    execute_distributed,
    execute_durable,
    execute_two_stage,
    start_telemetry_server,
)
from repro.run.spec import (
    RUN_COMMANDS,
    DurabilitySpec,
    EngineSpec,
    FaultSpec,
    MarketSpec,
    ParallelSpec,
    ProfileSpec,
    RunSpec,
    TelemetrySpec,
    WorkloadSpec,
)
from repro.workloads.scenarios import (
    counterexample_market,
    paper_simulation_market,
    toy_example_market,
)

__all__ = ["main", "build_parser"]

_FIG6_SERIES = ["welfare_proposed", "welfare_optimal", "welfare_ratio"]
_FIG7_SERIES = ["welfare_stage1", "welfare_phase1", "welfare_phase2"]
_FIG8_SERIES = ["rounds_stage1", "rounds_phase1", "rounds_phase2"]


# ----------------------------------------------------------------------
# Shared parent parsers (each cross-command flag is defined exactly once)
# ----------------------------------------------------------------------
def _observability_parent() -> argparse.ArgumentParser:
    """The observability flags every run subcommand shares."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a JSONL event trace (manifest line first) to PATH",
    )
    group.add_argument(
        "--metrics",
        action="store_true",
        help="print a metrics/span summary after the command output",
    )
    group.add_argument(
        "--trace-flush-every",
        type=int,
        default=1,
        metavar="N",
        help=(
            "buffer N events per trace write (default 1: write-through; "
            "raise for large chaos runs)"
        ),
    )
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the final metrics snapshot as OpenMetrics text to PATH",
    )
    group.add_argument(
        "--serve-metrics",
        metavar="[HOST:]PORT",
        default=None,
        help=(
            "serve live telemetry over HTTP while the command runs "
            "(/metrics, /health, /runs, /slo); port 0 picks a free port"
        ),
    )
    group.add_argument(
        "--serve-hold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "keep the telemetry server up SECONDS after the command "
            "finishes (lets scrapers read the final state)"
        ),
    )
    group.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="RULE",
        help=(
            "declarative SLO rule, e.g. rounds_to_convergence<=40, "
            "drop_rate<0.05, slot_age_s<=5, welfare_regression_pct<=10. "
            "Repeatable; evaluated on every scrape and once at the end"
        ),
    )
    group.add_argument(
        "--slo-policy",
        choices=["warn", "fail"],
        default="warn",
        help=(
            "what a violated SLO does to the exit code: warn (report "
            "only, default) or fail (exit nonzero)"
        ),
    )
    group.add_argument(
        "--profile-out",
        metavar="DIR",
        default=None,
        help=(
            "profile the run (cProfile + tracemalloc + kernel cost "
            "counters) and write profile.json / profile.collapsed / "
            "profile.speedscope.json into DIR"
        ),
    )
    return parent


def _durability_parent() -> argparse.ArgumentParser:
    """The durable-run flags shared by checkpointable subcommands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("durability")
    group.add_argument(
        "--checkpoint-dir",
        metavar="RUN_DIR",
        default=None,
        help=(
            "run durably: write a WAL, periodic state checkpoints and the "
            "run's own trace into RUN_DIR (resume later with "
            "'repro resume RUN_DIR')"
        ),
    )
    group.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="N",
        help="snapshot state every N committed epochs/slots (default 10)",
    )
    group.add_argument(
        "--inject-stall-after",
        type=int,
        default=None,
        metavar="N",
        help=(
            "testing hook: stop making progress after N WAL records (the "
            "run then waits to be SIGKILLed; requires --checkpoint-dir)"
        ),
    )
    return parent


def _dry_run_parent() -> argparse.ArgumentParser:
    """The ``--dry-run`` flag every spec-driven subcommand shares."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--dry-run",
        action="store_true",
        help=(
            "print the run's declarative spec as JSON and exit without "
            "executing (feed it back with 'repro run SPEC.json')"
        ),
    )
    return parent


def _parse_crash_spec(spec: str):
    """Parse ``AGENT@CRASH[-RESTART][/MODE]`` into a :class:`CrashFault`."""
    from repro.distributed.faults import CrashFault
    from repro.errors import SimulationError

    try:
        return CrashFault.parse(spec)
    except SimulationError as exc:
        raise argparse.ArgumentTypeError(
            f"bad crash spec {spec!r} "
            f"(expected AGENT@CRASH[-RESTART][/checkpoint|amnesia]): {exc}"
        )


def _parse_partition_spec(spec: str):
    """Parse ``G1|G2|...@START[-END]`` into a :class:`PartitionFault`.

    Groups are comma-separated agent ids; the literal group ``rest`` is
    shorthand for the implicit remainder group and is simply dropped
    (unnamed agents always form their own group).
    """
    from repro.distributed.faults import PartitionFault
    from repro.errors import SimulationError

    try:
        return PartitionFault.parse(spec)
    except SimulationError as exc:
        raise argparse.ArgumentTypeError(
            f"bad partition spec {spec!r} "
            f"(expected G1|G2|...@START[-END]): {exc}"
        )


def _parse_config_entry(text: str) -> Tuple[str, object]:
    """Parse one ``--config KEY=VALUE`` pair.

    Values go through :func:`ast.literal_eval` so numbers, booleans and
    tuples arrive typed (``node_budget=100000``, ``repair=False``);
    anything that does not parse stays a plain string.
    """
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"bad config entry {text!r} (expected KEY=VALUE)"
        )
    try:
        parsed: object = ast.literal_eval(value)
    except (ValueError, SyntaxError):
        parsed = value
    return key, parsed


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="spectrum-matching",
        description="Spectrum Matching (ICDCS 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    obs = _observability_parent()
    durability = _durability_parent()
    dry_run = _dry_run_parent()
    run_parents = [obs, dry_run]

    for figure in (6, 7, 8):
        fig_parser = sub.add_parser(
            f"fig{figure}",
            help=f"regenerate a panel of the paper's Fig. {figure}",
            parents=run_parents,
        )
        fig_parser.add_argument(
            "--panel", choices=["a", "b", "c"], default="a", help="figure panel"
        )
        fig_parser.add_argument(
            "--repetitions",
            type=int,
            default=None,
            help="Monte-Carlo repetitions per point (default: panel spec)",
        )
        fig_parser.add_argument("--seed", type=int, default=0)
        fig_parser.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for the sweep (default: serial; 0 = all cores)",
        )
        fig_parser.add_argument(
            "--csv", action="store_true", help="emit CSV instead of a table"
        )
        fig_parser.add_argument(
            "--json",
            metavar="PATH",
            default=None,
            help="also save the full series (mean/std/CI) as JSON",
        )

    sub.add_parser(
        "toy",
        help="replay the paper's toy example (Figs. 1-2)",
        parents=run_parents,
    )
    sub.add_parser(
        "counterexample",
        help="show the Section III-D pairwise-instability counterexample",
        parents=run_parents,
    )

    dist = sub.add_parser(
        "distributed",
        help="run the Section IV message-level protocol",
        parents=run_parents,
    )
    dist.add_argument("--buyers", type=int, default=30)
    dist.add_argument("--sellers", type=int, default=5)
    dist.add_argument("--seed", type=int, default=0)
    dist.add_argument(
        "--policy", choices=["default", "adaptive", "both"], default="both"
    )
    dist.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="message loss rate in [0, 1]; enables the ARQ transport",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the protocol under injected crashes and partitions",
        description=(
            "Run the Section IV protocol with a declarative fault schedule "
            "and report convergence, welfare and fault accounting."
        ),
        parents=[obs, durability, dry_run],
    )
    chaos.add_argument("--buyers", type=int, default=10)
    chaos.add_argument("--sellers", type=int, default=3)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--policy", choices=["default", "adaptive"], default="default"
    )
    chaos.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="message loss rate in [0, 1]; enables the ARQ transport",
    )
    chaos.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="AGENT@CRASH[-RESTART][/MODE]",
        type=_parse_crash_spec,
        help=(
            "crash AGENT at slot CRASH; restart at slot RESTART (omit for a "
            "permanent crash) in MODE 'checkpoint' (default) or 'amnesia'. "
            "Repeatable. Example: buyer:3@10-25/amnesia"
        ),
    )
    chaos.add_argument(
        "--partition",
        action="append",
        default=[],
        metavar="G1|G2|...@START[-END]",
        type=_parse_partition_spec,
        help=(
            "partition the population into '|'-separated groups of "
            "comma-separated agent ids over [START, END) (omit END for a "
            "partition that never heals); unnamed agents form an implicit "
            "extra group. Repeatable. Example: 'buyer:0,buyer:1|rest@5-20'"
        ),
    )
    chaos.add_argument(
        "--deadline-slots",
        type=int,
        default=None,
        help="slot budget before the timeout policy kicks in",
    )
    chaos.add_argument(
        "--on-timeout",
        choices=["raise", "degrade"],
        default="degrade",
        help=(
            "what to do at the deadline: abort loudly, or return the best "
            "interference-free partial matching (default: degrade)"
        ),
    )

    swaps = sub.add_parser(
        "swaps",
        help="run Stage III coordinated swaps (Section III-D future work)",
        parents=run_parents,
    )
    swaps.add_argument("--buyers", type=int, default=14)
    swaps.add_argument("--sellers", type=int, default=4)
    swaps.add_argument("--seed", type=int, default=0)
    swaps.add_argument(
        "--counterexample",
        action="store_true",
        help="use the frozen Section III-D instance instead of a random market",
    )

    dyn = sub.add_parser(
        "dynamic",
        help="simulate an evolving market (warm vs cold re-matching)",
        parents=[obs, durability, dry_run],
    )
    dyn.add_argument("--epochs", type=int, default=12)
    dyn.add_argument("--buyers", type=int, default=40)
    dyn.add_argument("--sellers", type=int, default=5)
    dyn.add_argument("--arrival-rate", type=float, default=5.0)
    dyn.add_argument("--departure-prob", type=float, default=0.12)
    dyn.add_argument("--drift", type=float, default=0.05)
    dyn.add_argument("--seed", type=int, default=0)
    dyn.add_argument(
        "--strategy",
        choices=["warm", "cold", "both"],
        default="both",
        help=(
            "re-matching strategy to run (default: both, for the "
            "warm-vs-cold comparison; durable runs need a single one)"
        ),
    )

    resume = sub.add_parser(
        "resume",
        help="continue a durable run from its latest checkpoint",
        description=(
            "Crash-consistent resume: reload RUN_DIR's newest valid "
            "checkpoint, truncate the trace and WAL to its recorded "
            "offsets, replay deterministically (verifying every "
            "re-executed step against the write-ahead log) and finish the "
            "run. Already-completed runs are reported idempotently."
        ),
        parents=[obs],
    )
    resume.add_argument(
        "run_dir", metavar="RUN_DIR", help="durable run directory"
    )

    supervise = sub.add_parser(
        "supervise",
        help="run a command under stall detection and bounded retries",
        description=(
            "Launch COMMAND as a child process; SIGKILL it if its durable "
            "run directory's WAL stops advancing for --stall-timeout "
            "seconds, then restart from the latest checkpoint ('repro "
            "resume') with exponential backoff until the retry budget or "
            "deadline runs out."
        ),
        parents=[obs],
    )
    supervise.add_argument(
        "--run-dir",
        metavar="RUN_DIR",
        default=None,
        help=(
            "durable run directory COMMAND writes (enables stall "
            "detection and checkpoint-based resume on retry)"
        ),
    )
    supervise.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill an attempt whose WAL stops advancing for this long",
    )
    supervise.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="overall wall-clock budget across all attempts",
    )
    supervise.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="retry budget after the first attempt (default 3)",
    )
    supervise.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base exponential-backoff delay between attempts (default 0.5)",
    )
    supervise.add_argument(
        "--retry-seed",
        type=int,
        default=0,
        help="seed for the backoff jitter stream (default 0)",
    )
    supervise.add_argument(
        "child_command",
        nargs=argparse.REMAINDER,
        metavar="COMMAND",
        help="command to supervise (prefix with -- to pass flags)",
    )

    report = sub.add_parser(
        "report",
        help="fast one-page replication check of the paper's headline claims",
        parents=run_parents,
    )
    report.add_argument("--seed", type=int, default=0)

    solve = sub.add_parser(
        "solve",
        help="run one registered solver and print its report",
        parents=run_parents,
    )
    solve.add_argument(
        "--solver",
        required=True,
        metavar="NAME",
        help="registry name (see 'solvers list')",
    )
    solve.add_argument(
        "--scenario",
        choices=["paper", "toy", "counterexample"],
        default="paper",
        help="market to solve (default: a random paper-workload market)",
    )
    solve.add_argument("--buyers", type=int, default=20)
    solve.add_argument("--sellers", type=int, default=4)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--check-stability",
        action="store_true",
        help="also run the stability scans (IR / Nash / pairwise)",
    )
    solve.add_argument(
        "--config",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        type=_parse_config_entry,
        help=(
            "solver-specific config entry (repeatable), e.g. "
            "--config quota=4 --config repair=False"
        ),
    )

    solvers = sub.add_parser(
        "solvers", help="inspect the solver registry", parents=[obs]
    )
    solvers.add_argument("action", choices=["list"], help="what to do")
    solvers.add_argument(
        "--capability",
        choices=["exact", "heuristic", "bound_only", "decentralized"],
        default=None,
        help="only show solvers with this capability",
    )

    run_cmd = sub.add_parser(
        "run",
        help="execute a declarative RunSpec JSON file",
        description=(
            "Execute a run described by a RunSpec JSON document -- the "
            "spec any run subcommand emits with --dry-run. Telemetry, "
            "faults and durability all come from the spec, so one file "
            "replaces an arbitrarily flag-heavy invocation."
        ),
        parents=[dry_run],
    )
    run_cmd.add_argument(
        "spec",
        metavar="SPEC",
        help="RunSpec JSON path (write one with '<subcommand> --dry-run')",
    )

    trace = sub.add_parser(
        "trace", help="analyze recorded JSONL event traces offline"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    summarize = trace_sub.add_parser(
        "summarize", help="per-run digest: rounds, welfare, messages"
    )
    summarize.add_argument("trace", metavar="TRACE", help="JSONL trace path")

    diff = trace_sub.add_parser(
        "diff",
        help=(
            "align two traces and report the first behavioural divergence "
            "(exit 1 when they diverge)"
        ),
    )
    diff.add_argument("left", metavar="LEFT", help="baseline trace path")
    diff.add_argument("right", metavar="RIGHT", help="candidate trace path")
    diff.add_argument(
        "--rounds-only",
        action="store_true",
        help=(
            "compare only the three round events (aligns a full CLI trace "
            "against the rounds-only golden trace)"
        ),
    )

    export = trace_sub.add_parser(
        "export", help="convert a trace to an interchange format"
    )
    export.add_argument("trace", metavar="TRACE", help="JSONL trace path")
    export.add_argument(
        "--format",
        choices=["chrome", "openmetrics", "collapsed", "speedscope"],
        required=True,
        help=(
            "chrome: trace-event JSON for Perfetto/chrome://tracing; "
            "openmetrics: exposition text of the trace's event counts; "
            "collapsed: flamegraph collapsed span stacks; "
            "speedscope: span tree as a speedscope.app profile"
        ),
    )
    export.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write here instead of stdout",
    )

    causality = trace_sub.add_parser(
        "causality",
        help="explain one agent's messages as causal chains",
    )
    causality.add_argument("trace", metavar="TRACE", help="JSONL trace path")
    causality.add_argument(
        "--agent",
        required=True,
        metavar="NAME",
        help="wire id, e.g. buyer:3 or seller:0",
    )
    causality.add_argument(
        "--limit",
        type=int,
        default=3,
        metavar="N",
        help="show at most N chains, latest first (default 3)",
    )

    profile = sub.add_parser(
        "profile",
        help="run, inspect and diff performance profiles",
        description=(
            "Profiling toolkit: execute a RunSpec under the stdlib "
            "profiler harness, render a profile's attribution tables, "
            "or diff two profiles (deterministic cost-counter drift "
            "fails the diff; wall-time movement is informational)."
        ),
    )
    profile_sub = profile.add_subparsers(
        dest="profile_command", required=True
    )

    prof_run = profile_sub.add_parser(
        "run",
        help="execute a RunSpec with profiling on and write the artifacts",
    )
    prof_run.add_argument(
        "spec",
        metavar="SPEC",
        help="RunSpec JSON path (write one with '<subcommand> --dry-run')",
    )
    prof_run.add_argument(
        "--out",
        metavar="DIR",
        default="profile-out",
        help="artifact directory (default ./profile-out)",
    )
    prof_run.add_argument(
        "--no-memory",
        action="store_true",
        help="skip the tracemalloc driver (cheaper; no alloc table)",
    )

    prof_top = profile_sub.add_parser(
        "top",
        help="show a profile's dominant spans, functions or alloc sites",
    )
    prof_top.add_argument(
        "path",
        metavar="PROFILE",
        help="profile.json path (or the directory holding it)",
    )
    prof_top.add_argument(
        "--section",
        choices=["spans", "functions", "allocs"],
        default="spans",
        help="which attribution table to render (default spans)",
    )
    prof_top.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="rows to show (default 10)",
    )

    prof_diff = profile_sub.add_parser(
        "diff",
        help=(
            "compare two profiles; exit 1 on deterministic cost-counter "
            "drift (an algorithmic difference, never hardware noise)"
        ),
    )
    prof_diff.add_argument(
        "left", metavar="A", help="baseline profile.json (or directory)"
    )
    prof_diff.add_argument(
        "right", metavar="B", help="candidate profile.json (or directory)"
    )

    watch = sub.add_parser(
        "watch",
        help="live dashboard for a telemetry server URL or a growing trace",
        description=(
            "Attach to a running command's telemetry server "
            "(http://host:port, see --serve-metrics) or tail a growing "
            "JSONL trace file, and render a refreshing console dashboard: "
            "run phase, welfare sparkline, message/drop counters, active "
            "faults, agent-step latency and SLO status."
        ),
    )
    watch.add_argument(
        "target",
        metavar="TARGET",
        help="server URL (http://...) or trace JSONL path",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period (default 1s)",
    )
    watch.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="stop after N refreshes (default: run until interrupted)",
    )
    watch.add_argument(
        "--plain",
        action="store_true",
        help="append frames instead of clearing the screen (log-friendly)",
    )
    watch.add_argument(
        "--profile",
        metavar="DIR",
        default=None,
        help=(
            "a run's --profile-out directory; once its profile.json "
            "appears, top self-time spans and allocation sites are shown"
        ),
    )

    return parser


#: Flags consumed by the observability harness itself, excluded from the
#: manifest's config record of non-spec commands.
_OBS_FLAGS = (
    "trace_out",
    "metrics",
    "trace_flush_every",
    "metrics_out",
    "serve_metrics",
    "serve_hold",
    "slo",
    "slo_policy",
    "profile_out",
)


# ----------------------------------------------------------------------
# Flags -> RunSpec adapters
# ----------------------------------------------------------------------
def _durability_from_args(args: argparse.Namespace) -> DurabilitySpec:
    return DurabilitySpec(
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=int(getattr(args, "checkpoint_every", 10)),
        inject_stall_after=getattr(args, "inject_stall_after", None),
    )


def _spec_from_args(args: argparse.Namespace) -> RunSpec:
    """Translate one run subcommand's parsed flags into its RunSpec.

    This is the single place where CLI flags meet the declarative run
    model; the command implementations below consume only the spec, so
    ``repro <command> <flags>`` and ``repro run <spec.json>`` execute the
    identical path.
    """
    spec = _base_spec_from_args(args)
    profile = ProfileSpec.from_args(args)
    if profile.enabled:
        spec = dataclasses.replace(spec, profile=profile)
    return spec


def _base_spec_from_args(args: argparse.Namespace) -> RunSpec:
    command = args.command
    telemetry = TelemetrySpec.from_args(args)
    if command in ("fig6", "fig7", "fig8"):
        return RunSpec(
            command=command,
            market=MarketSpec(seed=args.seed),
            engine=EngineSpec(
                name="figure",
                options={
                    "panel": args.panel,
                    "repetitions": args.repetitions,
                    "csv": args.csv,
                    "json_out": args.json,
                },
            ),
            telemetry=telemetry,
            parallel=ParallelSpec(jobs=args.jobs),
        )
    if command == "toy":
        return RunSpec(
            command="toy",
            market=MarketSpec(scenario="toy"),
            telemetry=telemetry,
        )
    if command == "counterexample":
        return RunSpec(
            command="counterexample",
            market=MarketSpec(scenario="counterexample"),
            telemetry=telemetry,
        )
    if command == "distributed":
        return RunSpec(
            command="distributed",
            market=MarketSpec(
                buyers=args.buyers, sellers=args.sellers, seed=args.seed
            ),
            engine=EngineSpec(
                name="distributed", options={"policy": args.policy}
            ),
            faults=FaultSpec(loss=args.loss),
            telemetry=telemetry,
        )
    if command == "chaos":
        return RunSpec(
            command="chaos",
            market=MarketSpec(
                buyers=args.buyers, sellers=args.sellers, seed=args.seed
            ),
            engine=EngineSpec(
                name="distributed", options={"policy": args.policy}
            ),
            faults=FaultSpec(
                loss=args.loss,
                crashes=tuple(fault.to_spec() for fault in args.crash),
                partitions=tuple(
                    fault.to_spec() for fault in args.partition
                ),
                deadline_slots=args.deadline_slots,
                on_timeout=args.on_timeout,
            ),
            telemetry=telemetry,
            durability=_durability_from_args(args),
        )
    if command == "swaps":
        return RunSpec(
            command="swaps",
            market=MarketSpec(
                scenario=(
                    "counterexample" if args.counterexample else "paper"
                ),
                buyers=args.buyers,
                sellers=args.sellers,
                seed=args.seed,
            ),
            engine=EngineSpec(name="swaps"),
            telemetry=telemetry,
        )
    if command == "dynamic":
        return RunSpec(
            command="dynamic",
            market=MarketSpec(
                buyers=args.buyers,
                sellers=args.sellers,
                seed=args.seed,
                workload=WorkloadSpec(
                    epochs=args.epochs,
                    arrival_rate=args.arrival_rate,
                    departure_prob=args.departure_prob,
                    drift=args.drift,
                    strategy=args.strategy,
                ),
            ),
            engine=EngineSpec(name="dynamic"),
            telemetry=telemetry,
            durability=_durability_from_args(args),
        )
    if command == "report":
        return RunSpec(
            command="report",
            market=MarketSpec(seed=args.seed),
            telemetry=telemetry,
        )
    if command == "solve":
        options = dict(args.config)
        if args.check_stability:
            options["check_stability"] = True
        return RunSpec(
            command="solve",
            market=MarketSpec(
                scenario=args.scenario,
                buyers=args.buyers,
                sellers=args.sellers,
                seed=args.seed,
            ),
            engine=EngineSpec(name=args.solver, options=options),
            telemetry=telemetry,
        )
    raise AssertionError(f"no spec mapping for command {command!r}")


# ----------------------------------------------------------------------
# Command implementations (each consumes a RunSpec)
# ----------------------------------------------------------------------
def _cmd_figure(figure: int, spec: RunSpec) -> int:
    options = spec.engine.options
    panel = options.get("panel", "a")
    repetitions = options.get("repetitions")
    fig_spec = figure_spec(figure, panel)
    rows = run_figure(
        fig_spec,
        repetitions=repetitions,
        seed=spec.market.seed,
        jobs=spec.parallel.jobs,
    )
    series = {6: _FIG6_SERIES, 7: _FIG7_SERIES, 8: _FIG8_SERIES}[figure]
    x_label = fig_spec.axis.value
    include_srcc = fig_spec.axis.value == "similarity"
    if options.get("csv"):
        print(rows_to_csv(rows, series, x_label=x_label), end="")
    else:
        print(f"Fig. {figure}({panel}) -- sweep over {x_label}")
        print(format_experiment_rows(rows, series, x_label, include_srcc))
    json_out = options.get("json_out")
    if json_out:
        from repro.analysis.persistence import save_rows

        save_rows(
            json_out,
            rows,
            metadata={
                "figure": figure,
                "panel": panel,
                "seed": spec.market.seed,
                "repetitions": repetitions or fig_spec.default_repetitions,
            },
        )
        print(f"saved series to {json_out}")
    return 0


def _emit_market_created(market, scenario: str) -> None:
    """Emit the ``market.created`` lifecycle event for a CLI-built market."""
    recorder = get_recorder()
    if recorder.enabled:
        recorder.emit(
            "market.created",
            scenario=scenario,
            buyers=market.num_buyers,
            channels=market.num_channels,
        )


def _cmd_toy(spec: RunSpec) -> int:
    market = build_market(spec.market)
    _emit_market_created(market, "toy")
    result = execute_two_stage(market)
    print("Paper toy example (5 buyers, sellers a/b/c)")
    print("-- Stage I (adapted deferred acceptance) --")
    for record in result.stage_one.rounds:
        proposals = {
            market.channel_names[ch]: [market.buyer_names[j] for j in buyers]
            for ch, buyers in sorted(record.proposals.items())
        }
        waitlists = {
            market.channel_names[ch]: [market.buyer_names[j] for j in members]
            for ch, members in sorted(record.waitlists.items())
        }
        print(f"round {record.round_index}: proposals={proposals}")
        print(f"          waitlists={waitlists}")
    print(f"Stage I welfare: {result.welfare_stage1:g} (paper: 27)")
    print("-- Stage II (transfer and invitation) --")
    for record in result.stage_two.transfer_rounds:
        print(
            f"transfer round {record.round_index}: "
            f"accepted={record.accepted} rejected={record.rejected}"
        )
    for record in result.stage_two.invitation_rounds:
        print(
            f"invitation round {record.round_index}: "
            f"accepted={record.accepted} declined={record.declined}"
        )
    print(f"Final welfare: {result.social_welfare:g} (paper: 30)")
    coalitions = {
        market.channel_names[ch]: sorted(
            market.buyer_names[j] for j in result.matching.coalition(ch)
        )
        for ch in range(market.num_channels)
    }
    print(f"Final matching: {coalitions}")
    return 0


def _cmd_counterexample(spec: RunSpec) -> int:
    market = build_market(spec.market)
    _emit_market_created(market, "counterexample")
    result = execute_two_stage(market)
    matching = result.matching
    print("Section III-D counterexample")
    coalitions = {
        market.channel_names[ch]: sorted(
            market.buyer_names[j] for j in matching.coalition(ch)
        )
        for ch in range(market.num_channels)
    }
    print(f"algorithm output: {coalitions} (welfare {result.social_welfare:g})")
    print(f"Nash-stable:      {is_nash_stable(market, matching)}")
    print(f"pairwise-stable:  {is_pairwise_stable(market, matching)}")
    for pair in pairwise_blocking_pairs(market, matching):
        print(
            f"  blocking pair: seller {market.channel_names[pair.channel]} + "
            f"buyer {market.buyer_names[pair.buyer]} "
            f"(evicting {[market.buyer_names[k] for k in pair.evicted]}; "
            f"seller +{pair.seller_gain:g}, buyer "
            f"{pair.buyer_current:g} -> {pair.buyer_new:g})"
        )
    return 0


def _cmd_distributed(spec: RunSpec) -> int:
    from repro.distributed.transition import adaptive_policy, default_policy

    market = build_market(spec.market)
    _emit_market_created(market, "paper_simulation")
    centralized = execute_two_stage(market, record_trace=False)
    engine = getattr(get_recorder(), "slo_engine", None)
    if engine is not None:
        engine.set_reference("welfare", centralized.social_welfare)
    print(
        f"market: N={spec.market.buyers} buyers, M={spec.market.sellers} "
        f"channels (seed {spec.market.seed}); centralized welfare "
        f"{centralized.social_welfare:.4f}"
    )
    network = None
    reliable = False
    loss = spec.faults.loss
    if loss > 0.0:
        from repro.distributed.network import LossyNetwork

        network = LossyNetwork(loss)
        reliable = True
        print(f"network: {loss:.0%} message loss, ARQ transport enabled")
    policy_name = spec.engine.options.get("policy", "both")
    policies = []
    if policy_name in ("default", "both"):
        policies.append(("default", default_policy()))
    if policy_name in ("adaptive", "both"):
        policies.append(("adaptive", adaptive_policy()))
    for name, policy in policies:
        run = execute_distributed(
            market,
            policy=policy,
            network=network,
            seed=spec.market.seed,
            reliable_transport=reliable,
        )
        print(
            f"{name:>8}: slots={run.slots} messages={run.messages_sent} "
            f"dropped={run.messages_dropped} "
            f"welfare={run.social_welfare:.4f} "
            f"(matches centralized: {run.matching == centralized.matching})"
        )
    return 0


def _cmd_chaos_durable(spec: RunSpec) -> int:
    from repro.errors import CheckpointError

    try:
        result = execute_durable(
            "chaos",
            spec.durability.checkpoint_dir,
            spec.durable_identity(),
            seed=spec.market.seed,
            recorder=get_recorder(),
            inject_stall_after=spec.durability.inject_stall_after,
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_durable_chaos_result(spec.durability.checkpoint_dir, result)
    return 0


def _print_durable_chaos_result(run_dir: str, result: dict) -> None:
    print(f"durable chaos run complete in {run_dir}")
    print(
        f"status={result['status']} slots={result['slots']} "
        f"welfare={result['social_welfare']:.4f} "
        f"matched={result['matched']}"
    )
    print(
        f"faults: crashes={result['crashes']} restarts={result['restarts']} "
        f"lost_to_crash={result['messages_lost_to_crash']} "
        f"partition_drops={result['partition_drops']} "
        f"view_divergences={result['view_divergences']}"
    )
    print(
        f"traffic: sent={result['messages_sent']} "
        f"delivered={result['messages_delivered']} "
        f"dropped={result['messages_dropped']}"
    )


def _cmd_chaos(spec: RunSpec) -> int:
    from repro.distributed.faults import (
        CrashFault,
        FaultSchedule,
        PartitionFault,
    )
    from repro.distributed.transition import adaptive_policy, default_policy
    from repro.errors import SimulationError

    if spec.durability.durable:
        return _cmd_chaos_durable(spec)

    market = build_market(spec.market)
    _emit_market_created(market, "paper_simulation")
    policy_name = spec.engine.options.get("policy", "default")
    policy = (
        default_policy() if policy_name == "default" else adaptive_policy()
    )

    schedule = FaultSchedule(
        crashes=[CrashFault.parse(s) for s in spec.faults.crashes],
        partitions=[
            PartitionFault.parse(s) for s in spec.faults.partitions
        ],
    )
    network = None
    reliable = False
    loss = spec.faults.loss
    if loss > 0.0:
        from repro.distributed.network import LossyNetwork

        network = LossyNetwork(loss)
        reliable = True
    print(
        f"market: N={spec.market.buyers} buyers, M={spec.market.sellers} "
        f"channels (seed {spec.market.seed}); policy {policy_name}"
    )
    print(
        f"faults: {len(schedule.crashes)} crash(es), "
        f"{len(schedule.partitions)} partition(s); "
        f"loss {loss:.0%}"
        + (", ARQ transport" if reliable else "")
        + (
            f"; deadline {spec.faults.deadline_slots} slots "
            f"({spec.faults.on_timeout} on timeout)"
            if spec.faults.deadline_slots is not None
            else ""
        )
    )
    # The fault-free reference twin runs under the null recorder, so a
    # --trace-out trace contains only the chaos run itself and diffs
    # cleanly against a separately recorded fault-free trace.
    from repro.obs import NULL_RECORDER

    reference = execute_distributed(
        market, policy=policy, recorder=NULL_RECORDER
    )
    # The fault-free welfare is the natural baseline for the
    # welfare_regression_pct SLO signal.
    engine = getattr(get_recorder(), "slo_engine", None)
    if engine is not None:
        engine.set_reference("welfare", reference.social_welfare)
    try:
        run = execute_distributed(
            market,
            policy=policy,
            network=network,
            seed=spec.market.seed,
            reliable_transport=reliable,
            fault_schedule=schedule if not schedule.empty else None,
            deadline_slots=spec.faults.deadline_slots,
            on_timeout=spec.faults.on_timeout,
        )
    except SimulationError as exc:
        print(f"run aborted: {exc}")
        return 1
    print(
        f"status={run.status} slots={run.slots} "
        f"welfare={run.social_welfare:.4f} "
        f"(fault-free: {reference.social_welfare:.4f}) "
        f"matched={run.matching.num_matched()}/{market.num_buyers}"
    )
    print(
        f"faults: crashes={run.crashes} restarts={run.restarts} "
        f"lost_to_crash={run.messages_lost_to_crash} "
        f"partition_drops={run.partition_drops} "
        f"view_divergences={run.view_divergences}"
    )
    if run.recovery_slots:
        print(f"recovery times (slots): {list(run.recovery_slots)}")
    print(
        f"traffic: sent={run.messages_sent} delivered={run.messages_delivered} "
        f"dropped={run.messages_dropped}"
    )
    print(f"matches fault-free outcome: {run.matching == reference.matching}")
    return 0


def _cmd_swaps(spec: RunSpec) -> int:
    from repro.core.swap_extension import coordinated_swaps

    market = build_market(spec.market)
    if spec.market.scenario == "counterexample":
        print("instance: Section III-D counterexample")
    else:
        print(
            f"instance: random market N={spec.market.buyers}, "
            f"M={spec.market.sellers} (seed {spec.market.seed})"
        )
    result = execute_two_stage(market, record_trace=False)
    stage3 = coordinated_swaps(market, result.matching)
    print(f"two-stage welfare: {stage3.welfare_before:.4f}")
    print(f"after Stage III:   {stage3.welfare_after:.4f} "
          f"({stage3.num_swaps} swap(s) executed)")
    for swap in stage3.swaps:
        print(
            f"  swap: buyer {market.buyer_names[swap.buyer]} -> channel "
            f"{market.channel_names[swap.channel]}, evicting "
            f"{[market.buyer_names[k] for k in swap.evicted]} "
            f"(welfare {swap.welfare_before:g} -> {swap.welfare_after:g})"
        )
    print(f"pairwise-stable after: {is_pairwise_stable(market, stage3.matching)}")
    return 0


def _cmd_dynamic_durable(spec: RunSpec) -> int:
    from repro.errors import CheckpointError

    try:
        result = execute_durable(
            "dynamic",
            spec.durability.checkpoint_dir,
            spec.durable_identity(),
            seed=spec.market.seed,
            recorder=get_recorder(),
            inject_stall_after=spec.durability.inject_stall_after,
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"durable dynamic run complete in {spec.durability.checkpoint_dir} "
        f"({result['epochs']} epochs, strategy {result['strategy']})"
    )
    print(
        f"{result['strategy']:>5}: total welfare "
        f"{result['total_welfare']:.2f}, incumbents moved "
        f"{result['total_churned']}, protocol rounds {result['total_rounds']}"
    )
    return 0


def _cmd_dynamic(spec: RunSpec) -> int:
    import numpy as np

    from repro.dynamic.generator import DynamicMarketGenerator
    from repro.dynamic.online import OnlineMatcher, RematchStrategy

    if spec.durability.durable:
        return _cmd_dynamic_durable(spec)

    workload = spec.market.workload
    strategies = (
        list(RematchStrategy)
        if workload.strategy == "both"
        else [RematchStrategy(workload.strategy)]
    )
    results = {}
    for strategy in strategies:
        generator = DynamicMarketGenerator(
            num_channels=spec.market.sellers,
            initial_buyers=spec.market.buyers,
            arrival_rate=workload.arrival_rate,
            departure_prob=workload.departure_prob,
            drift_sigma=workload.drift,
            rng=np.random.default_rng(spec.market.seed),
        )
        matcher = OnlineMatcher(strategy)
        results[strategy] = matcher.run(generator.epochs(workload.epochs))
    print(
        f"{workload.epochs} epochs, N0={spec.market.buyers}, "
        f"M={spec.market.sellers}, "
        f"arrivals~Poisson({workload.arrival_rate}), departures "
        f"{workload.departure_prob:.0%}, drift {workload.drift}"
    )
    for strategy, outcomes in results.items():
        welfare = sum(o.social_welfare for o in outcomes[1:])
        moved = sum(o.churned for o in outcomes[1:])
        rounds = sum(o.rounds for o in outcomes[1:])
        print(
            f"{strategy.value:>5}: total welfare {welfare:.2f}, "
            f"incumbents moved {moved}, protocol rounds {rounds}"
        )
    return 0


def _cmd_report(spec: RunSpec) -> int:
    """Quick replication report: each headline claim, checked live."""
    import numpy as np

    import repro
    from repro.core.swap_extension import coordinated_swaps
    from repro.distributed.transition import adaptive_policy, default_policy
    from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound

    seed = spec.market.seed

    def line(ok: bool, text: str) -> None:
        print(f"  [{'PASS' if ok else 'FAIL'}] {text}")

    print(f"spectrum-matching {repro.__version__} -- replication report")
    print("paper: Chen et al., 'Spectrum Matching', IEEE ICDCS 2016\n")

    print("Toy example (Figs. 1-3):")
    toy = toy_example_market()
    toy_result = execute_two_stage(toy, record_trace=False)
    line(
        toy_result.welfare_stage1 == 27.0,
        f"Stage I welfare 27 (measured {toy_result.welfare_stage1:g})",
    )
    line(
        toy_result.social_welfare == 30.0,
        f"final welfare 30 (measured {toy_result.social_welfare:g})",
    )

    print("Stability (Propositions 3-4, Section III-D):")
    ce = counterexample_market()
    ce_result = execute_two_stage(ce, record_trace=False)
    line(is_nash_stable(ce, ce_result.matching), "output Nash-stable")
    line(
        not is_pairwise_stable(ce, ce_result.matching),
        "counterexample pairwise-blocked (negative result reproduced)",
    )
    stage3 = coordinated_swaps(ce, ce_result.matching)
    line(
        stage3.welfare_after == 27.0,
        f"Stage III repairs it to the optimum "
        f"({stage3.welfare_before:g} -> {stage3.welfare_after:g})",
    )

    print("Headline (>90% of optimal, Fig. 6 regime):")
    ratios = []
    for rep in range(20):
        market = paper_simulation_market(
            8, 4, np.random.default_rng([seed, rep])
        )
        result = execute_two_stage(market, record_trace=False)
        best = optimal_matching_branch_and_bound(market).social_welfare(
            market.utilities
        )
        ratios.append(result.social_welfare / best if best > 0 else 1.0)
    mean_ratio = float(np.mean(ratios))
    line(mean_ratio > 0.9, f"mean welfare ratio {mean_ratio:.3f} (20 markets)")

    print("Distributed implementation (Section IV):")
    market = paper_simulation_market(12, 3, np.random.default_rng(seed))
    centralized = execute_two_stage(market, record_trace=False)
    distributed = execute_distributed(market, policy=default_policy())
    line(
        distributed.matching == centralized.matching,
        "default-rule protocol replays the centralised algorithm exactly",
    )
    adaptive = execute_distributed(toy, policy=adaptive_policy())
    default_run = execute_distributed(toy, policy=default_policy())
    line(
        adaptive.slots < default_run.slots,
        f"adaptive transition rules beat the default deadline "
        f"({adaptive.slots} vs {default_run.slots} slots on the toy)",
    )
    print("\nfull evaluation: pytest benchmarks/ --benchmark-only -s")
    return 0


def _cmd_solve(spec: RunSpec) -> int:
    from repro.engine import get_solver
    from repro.errors import SolverError

    market = build_market(spec.market)
    _emit_market_created(market, spec.market.scenario)
    config = dict(spec.engine.options)
    check_stability = bool(config.get("check_stability"))
    try:
        solver = get_solver(spec.engine.name)
        report = solver.solve(market, config=config or None)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"solver: {report.solver} "
        f"[{', '.join(sorted(c.value for c in solver.capabilities))}]"
    )
    print(
        f"market: {market.num_buyers} buyers x {market.num_channels} channels "
        f"({spec.market.scenario})"
    )
    print(f"status: {report.status}")
    if report.matching is None:
        print(f"bound:  {report.social_welfare:.4f} (no matching produced)")
    else:
        print(
            f"welfare: {report.social_welfare:.4f}  "
            f"matched: {report.num_matched}/{report.num_buyers} "
            f"({report.matched_fraction:.0%})"
        )
        print(f"interference-free: {report.interference_free}")
    if check_stability and report.matching is not None:
        print(
            f"stability: individually_rational={report.individually_rational} "
            f"nash={report.nash_stable} pairwise={report.pairwise_stable}"
        )
    print(f"time: {report.wall_time_s:.4f}s wall, {report.cpu_time_s:.4f}s cpu")
    if report.metadata:
        pairs = ", ".join(
            f"{key}={value}" for key, value in sorted(report.metadata.items())
        )
        print(f"metadata: {pairs}")
    if report.trace_path is not None:
        print(f"trace: {report.trace_path}")
    return 0


# ----------------------------------------------------------------------
# Non-spec commands (registry inspection, trace toolkit, runtime ops)
# ----------------------------------------------------------------------
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.trace import (
        CausalGraph,
        TraceReader,
        counters_from_events,
        diff_traces,
        format_chain,
        format_diff,
        format_summary,
        load_events,
        to_chrome_trace,
        to_collapsed,
        to_openmetrics,
        to_speedscope,
    )

    try:
        if args.trace_command == "summarize":
            reader = TraceReader.from_file(args.trace)
            print(format_summary(reader.summary()))
            return 0

        if args.trace_command == "diff":
            left = TraceReader.from_file(args.left)
            right = TraceReader.from_file(args.right)
            diff = diff_traces(
                left.events,
                right.events,
                rounds_only=args.rounds_only,
                left_label=args.left,
                right_label=args.right,
            )
            print(format_diff(diff))
            return 1 if diff.diverged else 0

        if args.trace_command == "export":
            import json as json_module

            events = load_events(args.trace)
            if args.format == "chrome":
                rendered = json_module.dumps(to_chrome_trace(events), indent=1)
            elif args.format == "collapsed":
                rendered = to_collapsed(events)
            elif args.format == "speedscope":
                rendered = json_module.dumps(to_speedscope(events), indent=1)
            else:
                rendered = to_openmetrics(counters_from_events(events))
            if args.output is None:
                print(rendered, end="" if rendered.endswith("\n") else "\n")
            else:
                from repro.ioutil import atomic_write_text

                if not rendered.endswith("\n"):
                    rendered += "\n"
                atomic_write_text(args.output, rendered)
                print(f"{args.format} export written to {args.output}")
            return 0

        if args.trace_command == "causality":
            graph = CausalGraph(load_events(args.trace))
            if not len(graph):
                print(
                    "error: trace has no msg.sent events (recorded without "
                    "the distributed kernel's event sink?)",
                    file=sys.stderr,
                )
                return 2
            chains = graph.explain(args.agent)[: max(args.limit, 1)]
            print(
                f"{args.agent}: {len(graph.messages_of_agent(args.agent))} "
                f"traced messages, showing {len(chains)} chain(s), "
                f"latest first"
            )
            for chain in chains:
                print(format_chain(graph, chain))
                print()
            return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def _cmd_solvers(args: argparse.Namespace) -> int:
    from repro.engine import list_solvers

    solvers = list_solvers(args.capability)
    if not solvers:
        print(f"no registered solver has capability {args.capability!r}")
        return 0
    width = max(len(solver.name) for solver in solvers)
    for solver in solvers:
        caps = ",".join(sorted(c.value for c in solver.capabilities))
        print(f"{solver.name:<{width}}  [{caps}]  {solver.description}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.errors import CheckpointError
    from repro.runtime import CheckpointStore, resume_run

    try:
        kind = CheckpointStore.open(args.run_dir).kind
        result = resume_run(args.run_dir, recorder=get_recorder())
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if kind == "dynamic":
        print(
            f"durable dynamic run complete in {args.run_dir} "
            f"({result['epochs']} epochs, strategy {result['strategy']})"
        )
        print(
            f"{result['strategy']:>5}: total welfare "
            f"{result['total_welfare']:.2f}, incumbents moved "
            f"{result['total_churned']}, protocol rounds "
            f"{result['total_rounds']}"
        )
    else:
        _print_durable_chaos_result(args.run_dir, result)
    return 0


def _cmd_supervise(args: argparse.Namespace) -> int:
    from repro.errors import RetryBudgetExceeded
    from repro.runtime import RetryPolicy, Supervisor

    command = list(args.child_command)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print("error: supervise needs a COMMAND to run", file=sys.stderr)
        return 2
    policy = RetryPolicy(
        max_retries=args.max_retries,
        base_backoff_s=args.backoff,
        seed=args.retry_seed,
    )
    supervisor = Supervisor(
        policy=policy,
        recorder=get_recorder(),
        stall_timeout_s=args.stall_timeout,
        deadline_s=args.deadline,
    )
    try:
        supervisor.run_command(command, run_dir=args.run_dir)
    except RetryBudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    attempts = len(supervisor.history)
    print(
        f"supervised command succeeded after {attempts} attempt(s) "
        f"({attempts - 1} retr{'y' if attempts == 2 else 'ies'})"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError, SpecError
    from repro.prof import (
        diff_profiles,
        format_diff,
        format_top,
        load_profile,
    )

    try:
        if args.profile_command == "run":
            from repro.run.session import Session

            try:
                with open(args.spec, "r", encoding="utf-8") as handle:
                    spec = RunSpec.from_json(handle.read())
            except OSError as exc:
                print(
                    f"error: cannot read spec file {args.spec!r}: {exc}",
                    file=sys.stderr,
                )
                return 2
            spec = dataclasses.replace(
                spec,
                profile=ProfileSpec(
                    profile_out=args.out, memory=not args.no_memory
                ),
            )
            Session(spec).run()
            print(f"profile written to {args.out}")
            payload = load_profile(args.out)
            for line in format_top(payload, limit=10, section="spans"):
                print(line)
            return 0
        if args.profile_command == "top":
            payload = load_profile(args.path)
            for line in format_top(
                payload, limit=args.limit, section=args.section
            ):
                print(line)
            return 0
        if args.profile_command == "diff":
            diff = diff_profiles(
                load_profile(args.left), load_profile(args.right)
            )
            for line in format_diff(diff):
                print(line)
            return 1 if diff["counter_drift"] else 0
    except (OSError, ObservabilityError, SpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled profile subcommand {args.profile_command!r}"
    )


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.watch import watch

    return watch(
        args.target,
        interval_s=args.interval,
        frames=args.frames,
        plain=args.plain,
        profile_path=args.profile,
    )


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def _dispatch_spec(spec: RunSpec) -> int:
    """Validate a RunSpec and execute its command implementation."""
    from repro.errors import SpecError

    try:
        spec.validate()
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    command = spec.command
    if command in ("fig6", "fig7", "fig8"):
        return _cmd_figure(int(command[3]), spec)
    if command == "toy":
        return _cmd_toy(spec)
    if command == "counterexample":
        return _cmd_counterexample(spec)
    if command == "distributed":
        return _cmd_distributed(spec)
    if command == "chaos":
        return _cmd_chaos(spec)
    if command == "swaps":
        return _cmd_swaps(spec)
    if command == "dynamic":
        return _cmd_dynamic(spec)
    if command == "report":
        return _cmd_report(spec)
    if command == "solve":
        return _cmd_solve(spec)
    raise AssertionError(f"unhandled spec command {command!r}")


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "solvers":
        return _cmd_solvers(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "supervise":
        return _cmd_supervise(args)
    if args.command == "watch":
        return _cmd_watch(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.errors import ObservabilityError, SpecError

    spec: Optional[RunSpec] = None
    if args.command == "run":
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                spec = RunSpec.from_json(handle.read())
        except OSError as exc:
            print(
                f"error: cannot read spec file {args.spec!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        except SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.command in RUN_COMMANDS:
        spec = _spec_from_args(args)

    if spec is not None and getattr(args, "dry_run", False):
        print(spec.to_json(indent=2))
        return 0

    if spec is not None:
        telemetry = spec.telemetry
        profile = spec.profile
        manifest_seed: Optional[int] = spec.market.seed
        manifest_config: dict = spec.to_dict()
    else:
        telemetry = TelemetrySpec.from_args(args)
        profile = ProfileSpec.from_args(args)
        manifest_seed = getattr(args, "seed", None)
        manifest_config = {
            key: value
            for key, value in vars(args).items()
            if key not in _OBS_FLAGS
        }

    try:
        recorder = build_recorder(
            telemetry,
            profile=profile,
            seed=manifest_seed,
            config=manifest_config,
        )
    except OSError as exc:
        print(
            f"error: cannot open trace file {telemetry.trace_out!r}: {exc}",
            file=sys.stderr,
        )
        return 2

    engine = None
    if telemetry.slo:
        try:
            engine = build_slo_engine(telemetry, recorder)
        except ObservabilityError as exc:
            print(f"error: {exc}", file=sys.stderr)
            recorder.close()
            return 2

    server = None
    if telemetry.serve_metrics is not None:
        try:
            server = start_telemetry_server(telemetry, recorder, engine)
        except (ObservabilityError, OSError) as exc:
            print(f"error: cannot serve telemetry: {exc}", file=sys.stderr)
            recorder.close()
            return 2
        print(f"telemetry server listening on {server.url}", file=sys.stderr)

    profiler = build_profiler(
        profile, recorder, meta={"command": args.command}
    )
    try:
        with recorder, use_recorder(recorder):
            if profiler is not None:
                profiler.start()
            if spec is not None:
                exit_code = _dispatch_spec(spec)
            else:
                exit_code = _dispatch(args)
            if profiler is not None:
                profiler.stop()
            if engine is not None:
                # Final evaluation happens inside the recorder context so
                # slo.violated events reach the trace before it closes.
                engine.evaluate(final=True)
    finally:
        if server is not None:
            hold = float(telemetry.serve_hold)
            if hold > 0:
                import time

                time.sleep(hold)
            server.stop()

    if engine is not None:
        for rule_text, count in engine.violation_counts.items():
            print(
                f"slo violated: {rule_text} ({count} evaluation(s))",
                file=sys.stderr,
            )
        exit_code = max(exit_code, engine.exit_code())
    if telemetry.metrics:
        print("\n-- observability summary --")
        print(format_metrics_summary(recorder))
    if telemetry.metrics_out is not None:
        from repro.ioutil import atomic_write_text
        from repro.trace.export import to_openmetrics

        try:
            atomic_write_text(
                telemetry.metrics_out,
                to_openmetrics(recorder.metrics.snapshot()),
            )
        except OSError as exc:
            print(
                f"error: cannot write metrics file "
                f"{telemetry.metrics_out!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"metrics written to {telemetry.metrics_out}")
    if profiler is not None and profiler.payload is not None:
        try:
            profiler.write()
        except OSError as exc:
            print(
                f"error: cannot write profile to "
                f"{profile.profile_out!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"profile written to {profile.profile_out}")
    if telemetry.trace_out is not None:
        print(f"trace written to {telemetry.trace_out}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
