"""Online re-matching across market epochs.

Given the epoch stream of :class:`~repro.dynamic.generator.
DynamicMarketGenerator`, a provider must refresh the matching each epoch.
Two strategies are implemented:

* **COLD** -- forget history, run the full two-stage algorithm on the new
  snapshot.  Maximises per-epoch welfare but reassigns buyers freely:
  a buyer whose situation did not change may still be bounced to another
  channel, which in practice means re-tuning radios and disrupting
  traffic.
* **WARM** -- carry the previous channel of every surviving buyer (always
  interference-feasible because locations are immutable) as a virtual
  Stage-I outcome, then run only Stage II: arrivals and unhappy
  incumbents *transfer* in, sellers *invite* previously rejected buyers.
  No incumbent is ever evicted, so churn is limited to voluntary
  improvements.

:class:`OnlineMatcher` tracks assignments by persistent buyer id and
reports per-epoch welfare, churn, and round counts so the warm-vs-cold
trade-off can be quantified (``benchmarks/bench_dynamic.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.matching import Matching
from repro.core.two_stage import iterate_stage_two, run_two_stage
from repro.dynamic.generator import Epoch
from repro.engine.validation import matching_welfare, require_interference_free
from repro.errors import SpectrumMatchingError
from repro.obs.recorder import Recorder, resolve_recorder

__all__ = ["RematchStrategy", "EpochOutcome", "OnlineMatcher"]


class RematchStrategy(str, enum.Enum):
    """How the matcher reacts to a new epoch."""

    COLD = "cold"
    WARM = "warm"


@dataclass(frozen=True)
class EpochOutcome:
    """One epoch's re-matching result.

    Attributes
    ----------
    epoch_index:
        The epoch this outcome belongs to.
    matching:
        The epoch's final matching (rows of the epoch's market).
    social_welfare:
        Welfare under the epoch's utilities.
    churned / persistent:
        Number of surviving buyers whose channel changed vs the number of
        surviving buyers considered (arrivals and departures never count
        as churn).
    rounds:
        Algorithm rounds spent this epoch (Stage I + II for COLD, Stage II
        only for WARM).
    """

    epoch_index: int
    matching: Matching
    social_welfare: float
    churned: int
    persistent: int
    rounds: int

    @property
    def churn_rate(self) -> float:
        """Fraction of surviving buyers reassigned (0 when none survive)."""
        if self.persistent == 0:
            return 0.0
        return self.churned / self.persistent


class OnlineMatcher:
    """Epoch-by-epoch matcher with persistent-identity bookkeeping.

    ``recorder`` (``None`` resolves to the ambient recorder at each step)
    turns every epoch into a ``dynamic.epoch`` lifecycle event with its
    welfare/churn/round outcome, plus churn and round counters.
    """

    def __init__(
        self,
        strategy: RematchStrategy = RematchStrategy.WARM,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.strategy = RematchStrategy(strategy)
        self._recorder = recorder
        #: Previous epoch's channel per global buyer id.
        self._assignment: Dict[int, int] = {}
        self._last_epoch_index: Optional[int] = None

    # ------------------------------------------------------------------
    # Core step
    # ------------------------------------------------------------------
    def step(self, epoch: Epoch) -> EpochOutcome:
        """Re-match one epoch and update the persistent assignment."""
        if (
            self._last_epoch_index is not None
            and epoch.index <= self._last_epoch_index
        ):
            raise SpectrumMatchingError(
                f"epochs must be fed in order: got {epoch.index} after "
                f"{self._last_epoch_index}"
            )

        if self.strategy is RematchStrategy.COLD or not self._assignment:
            matching, rounds = self._cold(epoch)
        else:
            matching, rounds = self._warm(epoch)

        churned, persistent = self._account_churn(epoch, matching)
        self._remember(epoch, matching)
        self._last_epoch_index = epoch.index
        outcome = EpochOutcome(
            epoch_index=epoch.index,
            matching=matching,
            social_welfare=matching_welfare(epoch.market.utilities, matching),
            churned=churned,
            persistent=persistent,
            rounds=rounds,
        )
        rec = resolve_recorder(self._recorder)
        if rec.enabled:
            rec.emit(
                "dynamic.epoch",
                epoch=epoch.index,
                strategy=self.strategy.value,
                buyers=epoch.market.num_buyers,
                arrived=len(epoch.arrived),
                departed=len(epoch.departed),
                social_welfare=outcome.social_welfare,
                churned=churned,
                persistent=persistent,
                rounds=rounds,
            )
            metrics = rec.metrics
            if metrics.enabled:
                metrics.counter("dynamic.epochs").inc()
                metrics.counter("dynamic.churned").inc(churned)
                metrics.counter("dynamic.rounds").inc(rounds)
        return outcome

    def run(self, epochs: List[Epoch]) -> List[EpochOutcome]:
        """Convenience: step through a whole epoch list.

        Emits a closing ``dynamic.run_end`` event so the live run
        registry can mark the dynamic run finished (per-epoch ``step``
        calls only ever heartbeat it).

        This is now a shim over
        :func:`repro.run.session.execute_online_run`, which holds the
        execution body; behaviour is unchanged.
        """
        from repro.run.session import execute_online_run

        return execute_online_run(self, epochs)

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------
    def _cold(self, epoch: Epoch) -> Tuple[Matching, int]:
        result = run_two_stage(epoch.market, record_trace=False)
        return result.matching, result.total_rounds

    def _warm(self, epoch: Epoch) -> Tuple[Matching, int]:
        market = epoch.market
        seed = Matching(market.num_channels, market.num_buyers)
        for row, global_id in enumerate(epoch.buyer_ids):
            channel = self._assignment.get(global_id)
            if channel is None:
                continue
            # Drift can zero out the carried channel's value; holding a
            # worthless channel equals being unmatched, so release it and
            # let Stage II place the buyer afresh.
            if market.price(channel, row) <= 0.0:
                continue
            seed.match(row, channel)
        # Carried assignments are mutually interference-free: survivors'
        # pairwise geometry is unchanged and the previous matching was
        # feasible.  Defensive check (cheap at these sizes):
        require_interference_free(
            market,
            seed,
            error=SpectrumMatchingError,
            context="warm-start seed (generator invariant broken)",
        )
        # Iterate Stage II to a fixed point: a single pass from an
        # arbitrary seed can miss Nash stability (see iterate_stage_two's
        # docstring); the fixed point provably cannot.
        matching, rounds, _iterations = iterate_stage_two(market, seed)
        return matching, rounds

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe checkpoint of the matcher's persistent state.

        The matcher is a pure function of (strategy, carried assignment,
        epoch cursor) and the epoch stream, so this is the entire state a
        crash-consistent resume needs (:mod:`repro.runtime`).
        """
        return {
            "strategy": self.strategy.value,
            "assignment": {
                str(buyer): channel
                for buyer, channel in sorted(self._assignment.items())
            },
            "last_epoch_index": self._last_epoch_index,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Reset the matcher from a :meth:`snapshot` checkpoint."""
        self.strategy = RematchStrategy(state["strategy"])
        self._assignment = {
            int(buyer): int(channel)
            for buyer, channel in state["assignment"].items()
        }
        last = state["last_epoch_index"]
        self._last_epoch_index = None if last is None else int(last)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _account_churn(
        self, epoch: Epoch, matching: Matching
    ) -> Tuple[int, int]:
        """Count surviving, previously *matched* buyers who were moved.

        Arrivals and previously unmatched buyers never count: gaining a
        channel is a win, not a disruption.  Losing or changing one is.
        """
        if self._last_epoch_index is None:
            return 0, 0  # first epoch: nobody is persistent yet
        churned = 0
        persistent = 0
        arrived = set(epoch.arrived)
        for row, global_id in enumerate(epoch.buyer_ids):
            if global_id in arrived:
                continue
            previous = self._assignment.get(global_id)
            if previous is None:
                continue
            persistent += 1
            if matching.channel_of(row) != previous:
                churned += 1
        return churned, persistent

    def _remember(self, epoch: Epoch, matching: Matching) -> None:
        self._assignment = {}
        for row, global_id in enumerate(epoch.buyer_ids):
            channel = matching.channel_of(row)
            if channel is not None:
                self._assignment[global_id] = channel
