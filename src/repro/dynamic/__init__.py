"""Dynamic spectrum markets: the "dynamic" in dynamic spectrum access.

The paper motivates spectrum matching with time-varying demand ("a
wireless service provider can sell spare spectrum to others when her
traffic demand is light, and buy additional spectrum when her demand
becomes heavy") but evaluates a single static snapshot.  This subpackage
supplies the temporal substrate a deployed system needs:

* :mod:`~repro.dynamic.generator` -- an evolving buyer population:
  Poisson arrivals, geometric lifetimes, bounded utility drift, fixed
  channel plant.  Each epoch materialises as an ordinary
  :class:`~repro.core.market.SpectrumMarket` plus the persistent identity
  of every row.
* :mod:`~repro.dynamic.online` -- re-matching strategies across epochs:
  **cold start** (re-run the full two-stage algorithm from scratch) and
  **warm start** (carry the previous assignment of surviving buyers and
  run only Stage II, letting newcomers transfer in).  Warm starts trade a
  little welfare for far less *churn* -- matched buyers keep their
  channels -- which is what a real provider cares about between epochs.
"""

from repro.dynamic.generator import DynamicMarketGenerator, Epoch
from repro.dynamic.online import (
    EpochOutcome,
    OnlineMatcher,
    RematchStrategy,
)

__all__ = [
    "DynamicMarketGenerator",
    "Epoch",
    "OnlineMatcher",
    "RematchStrategy",
    "EpochOutcome",
]
