"""Evolving spectrum-market generator.

Models a region served by a fixed channel plant (``M`` channels with
fixed transmission ranges) and a churning buyer population:

* **arrivals** -- ``Poisson(arrival_rate)`` new buyers per epoch, placed
  uniformly in the area with fresh U[0,1] utility vectors;
* **departures** -- each present buyer leaves independently with
  probability ``departure_prob`` per epoch (geometric lifetimes);
* **drift** -- surviving buyers' utilities random-walk with Gaussian
  steps of scale ``drift_sigma``, clipped to [0, 1] (traffic load and
  channel conditions change, locations do not).

Because locations are immutable, the interference subgraph among
surviving buyers is stable across epochs -- which is exactly what makes
warm-start re-matching (:mod:`repro.dynamic.online`) sound: a carried
assignment can never become interference-infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.market import SpectrumMarket
from repro.errors import MarketConfigurationError
from repro.interference.geometric import build_geometric_interference_map
from repro.workloads.deployment import (
    DEFAULT_AREA_SIDE,
    DEFAULT_MAX_RANGE,
    random_transmission_ranges,
)

__all__ = ["Epoch", "DynamicMarketGenerator"]


@dataclass(frozen=True)
class Epoch:
    """One epoch's materialised market.

    Attributes
    ----------
    index:
        Epoch number (0-based).
    market:
        The epoch's static :class:`SpectrumMarket` (rows = present buyers).
    buyer_ids:
        Persistent global id of each market row; ``buyer_ids[row]`` is
        stable across epochs for surviving buyers.
    arrived / departed:
        Global ids that appeared / disappeared relative to the previous
        epoch.
    """

    index: int
    market: SpectrumMarket
    buyer_ids: Tuple[int, ...]
    arrived: Tuple[int, ...]
    departed: Tuple[int, ...]

    def row_of(self, global_id: int) -> Optional[int]:
        """Market row of a global buyer id, or ``None`` if absent."""
        try:
            return self.buyer_ids.index(global_id)
        except ValueError:
            return None


class DynamicMarketGenerator:
    """Stateful epoch generator (see module docstring for the model).

    Parameters
    ----------
    num_channels:
        Size of the fixed channel plant.
    initial_buyers:
        Population size at epoch 0.
    arrival_rate:
        Mean Poisson arrivals per subsequent epoch.
    departure_prob:
        Per-buyer, per-epoch departure probability in [0, 1).
    drift_sigma:
        Standard deviation of the per-epoch utility random walk
        (0 disables drift).
    rng:
        Seeded generator; the full epoch sequence is a deterministic
        function of it.
    area_side / max_range:
        Geometry (paper defaults).
    """

    def __init__(
        self,
        num_channels: int,
        initial_buyers: int,
        arrival_rate: float,
        departure_prob: float,
        drift_sigma: float,
        rng: np.random.Generator,
        area_side: float = DEFAULT_AREA_SIDE,
        max_range: float = DEFAULT_MAX_RANGE,
    ) -> None:
        if num_channels < 1:
            raise MarketConfigurationError("need at least one channel")
        if initial_buyers < 1:
            raise MarketConfigurationError("need at least one initial buyer")
        if arrival_rate < 0:
            raise MarketConfigurationError("arrival_rate must be >= 0")
        if not 0.0 <= departure_prob < 1.0:
            raise MarketConfigurationError(
                f"departure_prob must lie in [0, 1), got {departure_prob}"
            )
        if drift_sigma < 0:
            raise MarketConfigurationError("drift_sigma must be >= 0")
        self._num_channels = num_channels
        self._arrival_rate = float(arrival_rate)
        self._departure_prob = float(departure_prob)
        self._drift_sigma = float(drift_sigma)
        self._rng = rng
        self._area_side = float(area_side)
        self._ranges = random_transmission_ranges(
            num_channels, rng, max_range=max_range
        )

        self._next_id = 0
        self._locations: Dict[int, np.ndarray] = {}
        self._utilities: Dict[int, np.ndarray] = {}
        self._epoch_index = -1
        for _ in range(initial_buyers):
            self._spawn_buyer()

    # ------------------------------------------------------------------
    # Internal population updates
    # ------------------------------------------------------------------
    def _spawn_buyer(self) -> int:
        buyer_id = self._next_id
        self._next_id += 1
        self._locations[buyer_id] = self._rng.uniform(
            0.0, self._area_side, size=2
        )
        self._utilities[buyer_id] = self._rng.random(self._num_channels)
        return buyer_id

    def _drift(self) -> None:
        if self._drift_sigma == 0.0:
            return
        # Iterate in id order, not dict order: the RNG stream's mapping to
        # buyers must not depend on how the population dict was built
        # (fresh inserts vs a checkpoint restore must drift identically).
        for buyer_id in sorted(self._utilities):
            noise = self._rng.normal(0.0, self._drift_sigma, self._num_channels)
            self._utilities[buyer_id] = np.clip(
                self._utilities[buyer_id] + noise, 0.0, 1.0
            )

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        """Current number of present buyers."""
        return len(self._locations)

    def next_epoch(self) -> Epoch:
        """Advance the population one epoch and materialise its market.

        Epoch 0 returns the initial population unchanged; subsequent
        calls apply departures, arrivals and drift first.  If everyone
        departs and nobody arrives, one replacement buyer is spawned (an
        empty market is not representable and not interesting).
        """
        self._epoch_index += 1
        arrived: List[int] = []
        departed: List[int] = []
        if self._epoch_index > 0:
            for buyer_id in sorted(self._locations):
                if self._rng.random() < self._departure_prob:
                    departed.append(buyer_id)
            for buyer_id in departed:
                del self._locations[buyer_id]
                del self._utilities[buyer_id]
            arrivals = int(self._rng.poisson(self._arrival_rate))
            for _ in range(arrivals):
                arrived.append(self._spawn_buyer())
            if not self._locations:
                arrived.append(self._spawn_buyer())
            self._drift()

        buyer_ids = tuple(sorted(self._locations))
        locations = np.stack([self._locations[b] for b in buyer_ids])
        utilities = np.stack([self._utilities[b] for b in buyer_ids])
        interference = build_geometric_interference_map(locations, self._ranges)
        market = SpectrumMarket(utilities, interference)
        return Epoch(
            index=self._epoch_index,
            market=market,
            buyer_ids=buyer_ids,
            arrived=tuple(arrived),
            departed=tuple(departed),
        )

    def epochs(self, count: int) -> List[Epoch]:
        """Generate the next ``count`` epochs as a list."""
        return [self.next_epoch() for _ in range(count)]

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe checkpoint of the full generator state.

        Captures everything :meth:`next_epoch` consumes -- the buyer
        population (locations, utilities, id counter), the epoch cursor,
        the channel plant and the RNG stream -- so a generator restored
        from this snapshot produces the *identical* remaining epoch
        sequence the original would have (the property crash-consistent
        resume relies on; see :mod:`repro.runtime`).
        """
        return {
            "next_id": self._next_id,
            "epoch_index": self._epoch_index,
            "rng_state": self._rng.bit_generator.state,
            "locations": {
                str(b): self._locations[b].tolist()
                for b in sorted(self._locations)
            },
            "utilities": {
                str(b): self._utilities[b].tolist()
                for b in sorted(self._utilities)
            },
            "ranges": list(self._ranges),
            "num_channels": self._num_channels,
            "area_side": self._area_side,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Reset the generator from a :meth:`snapshot` checkpoint."""
        if int(state["num_channels"]) != self._num_channels:
            raise MarketConfigurationError(
                f"snapshot was taken with {state['num_channels']} channels, "
                f"this generator has {self._num_channels}"
            )
        self._next_id = int(state["next_id"])
        self._epoch_index = int(state["epoch_index"])
        self._rng.bit_generator.state = state["rng_state"]
        # Rebuild population dicts in ascending-id insertion order (JSON
        # serialisation may have reordered keys lexicographically).
        self._locations = {
            buyer: np.asarray(state["locations"][str(buyer)], dtype=float)
            for buyer in sorted(int(b) for b in state["locations"])
        }
        self._utilities = {
            buyer: np.asarray(state["utilities"][str(buyer)], dtype=float)
            for buyer in sorted(int(b) for b in state["utilities"])
        }
        self._ranges = tuple(float(r) for r in state["ranges"])
        self._area_side = float(state["area_side"])
