"""Exception hierarchy for the spectrum-matching library.

Every error deliberately raised by this package derives from
:class:`SpectrumMatchingError`, so callers can catch library failures with a
single ``except`` clause while still distinguishing configuration problems
from algorithmic invariant violations.
"""

from __future__ import annotations


class SpectrumMatchingError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class MarketConfigurationError(SpectrumMatchingError):
    """A market instance is malformed.

    Raised when buyer/seller counts, utility matrices, or interference
    graphs are mutually inconsistent (e.g. a utility matrix whose shape does
    not match the number of channels, or an interference graph that refers
    to unknown buyers).
    """


class MatchingConsistencyError(SpectrumMatchingError):
    """A matching violates the bidirectional consistency of ``mu``.

    The matching function of Definition 1 in the paper requires that
    ``mu(j) == {i}`` if and only if ``j in mu(i)``.  Operations that would
    break this invariant raise this error instead of silently corrupting
    state.
    """


class InterferenceViolationError(SpectrumMatchingError):
    """An operation would co-locate interfering buyers on one channel."""


class SolverError(SpectrumMatchingError):
    """An exact or approximate solver failed or was given bad input."""


class SolverLimitExceeded(SolverError):
    """An exact solver refused an instance larger than its safety limit.

    The optimal-matching problem (eqs. 1-4 of the paper) is NP-hard; the
    brute-force and branch-and-bound solvers enforce explicit instance-size
    ceilings so a caller cannot accidentally launch an intractable search.
    """


class ProtocolError(SpectrumMatchingError):
    """The distributed protocol reached an invalid state.

    Examples: a seller receiving a proposal after announcing her stage
    transition, or an agent asked to handle a message type it does not
    understand.
    """


class SimulationError(SpectrumMatchingError):
    """The discrete-time simulation kernel was misused.

    Raised for duplicate agent identifiers, messages addressed to unknown
    agents, or stepping a simulator that already terminated.
    """


class ObservabilityError(SpectrumMatchingError):
    """The observability layer was misconfigured.

    Raised for metric-name/kind collisions, malformed histogram buckets,
    or events that cannot be reconstructed from their serialised form.
    """


class ParallelExecutionError(SpectrumMatchingError):
    """A parallel sweep worker failed.

    Raised by :mod:`repro.analysis.parallel` when a worker process raises
    or dies (e.g. killed by the OS).  The message carries the original
    worker-side error so the failure surfaces cleanly in the parent
    instead of hanging the sweep or losing the traceback.
    """


class SpecError(SpectrumMatchingError):
    """A declarative run specification is malformed.

    Raised by :mod:`repro.run.spec` when a ``RunSpec`` (or one of its
    sub-specs) carries unknown fields, a schema version newer than this
    build understands, or values outside their documented ranges.  The
    message always names the offending field so a hand-edited spec file
    can be repaired without reading source code.
    """


class CheckpointError(SpectrumMatchingError):
    """A durable-run checkpoint or run directory is unusable.

    Raised by :mod:`repro.runtime` for truncated or corrupt snapshots, a
    manifest whose config hash no longer matches the checkpoint (stale
    state from a different configuration), unknown format versions, or a
    resume attempt on a directory that was never a durable run.
    """


class RetryBudgetExceeded(SpectrumMatchingError):
    """The supervised runtime exhausted its retry budget (or deadline).

    Raised by :mod:`repro.runtime.supervise` after the configured number
    of restarts failed to produce a completed run, or when the overall
    deadline expired first.  The last underlying failure is chained as
    ``__cause__`` when there is one.
    """
