"""Smoke tests of the documented public API surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_quickstart_flow(self):
        """The README/docstring quickstart must work verbatim."""
        market = repro.paper_simulation_market(30, 5, np.random.default_rng(0))
        result = repro.run_two_stage(market)
        assert result.social_welfare > 0
        assert repro.is_nash_stable(market, result.matching)
        assert repro.is_individually_rational(market, result.matching)

    def test_distributed_flow(self):
        market = repro.toy_example_market()
        run = repro.run_distributed_matching(
            market, policy=repro.adaptive_policy()
        )
        assert run.social_welfare == pytest.approx(30.0)

    def test_solver_surface(self):
        market = repro.toy_example_market()
        exact = repro.optimal_matching_branch_and_bound(market)
        assert exact.social_welfare(market.utilities) == pytest.approx(33.0)
        assert repro.lp_relaxation_bound(market) >= 33.0 - 1e-6

    def test_physical_market_surface(self):
        sellers = [repro.PhysicalSeller(name="s", num_channels=2)]
        buyers = [
            repro.PhysicalBuyer(name="b", num_requested=2, utilities=(0.5, 0.9))
        ]
        from repro.interference.generators import interference_map_from_edge_lists

        imap = interference_map_from_edge_lists(2, [[], []])
        market = repro.SpectrumMarket.from_physical(sellers, buyers, imap)
        market.validate()
        result = repro.run_two_stage(market)
        # Each clone must end on a distinct channel.
        channels = {result.matching.channel_of(0), result.matching.channel_of(1)}
        assert channels == {0, 1}


class TestDoctests:
    def test_package_quickstart_doctest(self):
        """The quickstart in the package docstring must run verbatim."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.attempted >= 3
        assert results.failed == 0

    def test_analysis_namespace_exports(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name
