"""Tolerant tail-following of growing JSONL traces."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import JsonlEventSink
from repro.trace.tail import TraceFollower, read_events_tolerant


def _append(path, text):
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(text)


class TestFollower:
    def test_incremental_polls(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        follower = TraceFollower(path)
        assert follower.poll() == []  # file does not exist yet
        _append(path, '{"event":"a"}\n')
        assert [e["event"] for e in follower.poll()] == ["a"]
        assert follower.poll() == []  # nothing new
        _append(path, '{"event":"b"}\n{"event":"c"}\n')
        assert [e["event"] for e in follower.poll()] == ["b", "c"]
        assert follower.events_read == 3

    def test_torn_final_line_held_until_complete(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _append(path, '{"event":"a"}\n{"event":"b",')
        follower = TraceFollower(path)
        assert [e["event"] for e in follower.poll()] == ["a"]
        assert follower.skipped == 0  # torn line is pending, not bad
        _append(path, '"x":1}\n')
        (event,) = follower.poll()
        assert event == {"event": "b", "x": 1}

    def test_mangled_complete_line_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _append(path, '{"event":"a"}\nnot json at all\n[1,2]\n{"event":"b"}\n')
        follower = TraceFollower(path)
        events = follower.poll()
        assert [e["event"] for e in events] == ["a", "b"]
        assert follower.skipped == 2  # bad syntax + non-dict

    def test_truncation_restarts_from_top(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _append(path, '{"event":"a"}\n{"event":"b"}\n')
        follower = TraceFollower(path)
        assert len(follower.poll()) == 2
        with open(path, "w", encoding="utf-8") as stream:
            stream.write('{"event":"fresh"}\n')
        assert [e["event"] for e in follower.poll()] == ["fresh"]

    def test_follows_jsonl_sink_batches(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlEventSink(path, flush_every=3)
        follower = TraceFollower(path)
        sink.emit({"event": "a"})
        sink.emit({"event": "b"})
        sink.flush()
        assert [e["event"] for e in follower.poll()] == ["a", "b"]
        sink.emit({"event": "c"})
        sink.close()
        assert [e["event"] for e in follower.poll()] == ["c"]
        assert follower.skipped == 0


class TestOneShot:
    def test_reads_whole_file_including_unterminated_tail(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _append(path, '{"event":"a"}\n{"event":"b"}')  # no trailing newline
        events, skipped = read_events_tolerant(path)
        assert [e["event"] for e in events] == ["a", "b"]
        assert skipped == 0

    def test_counts_torn_tail_as_skipped(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _append(path, '{"event":"a"}\n{"event":"b", "trunc')
        events, skipped = read_events_tolerant(path)
        assert [e["event"] for e in events] == ["a"]
        assert skipped == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_events_tolerant(str(tmp_path / "nope.jsonl"))

    def test_round_trips_sink_output(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        events_in = [{"event": "x", "i": i} for i in range(5)]
        with JsonlEventSink(path) as sink:
            for event in events_in:
                sink.emit(event)
        events_out, skipped = read_events_tolerant(path)
        assert events_out == events_in
        assert skipped == 0
        assert json.loads(open(path).readline())["event"] == "x"
