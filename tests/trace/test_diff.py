"""Trace canonicalization and first-divergence alignment.

The property test is the satellite's headline guarantee: *any* trace
diffed against itself reports no divergence, whatever mix of rounds,
spans, messages and lifecycle events it carries.
"""

from __future__ import annotations

import copy
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import canonicalize_events, diff_traces, format_diff, load_events

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_two_stage_trace.jsonl"
)

# ---------------------------------------------------------------------------
# Event-stream strategy: a plausible mix of everything a real trace holds.
# ---------------------------------------------------------------------------
_round_event = st.fixed_dictionaries(
    {
        "event": st.just("stage1.round"),
        "round": st.integers(0, 50),
        "proposals": st.dictionaries(
            st.integers(0, 3).map(str), st.lists(st.integers(0, 20), max_size=3),
            max_size=3,
        ),
    }
)
_span_event = st.fixed_dictionaries(
    {
        "event": st.just("span"),
        "name": st.sampled_from(["stage1.mwis", "two_stage", "solve.greedy"]),
        "depth": st.integers(0, 3),
        "wall_s": st.floats(0, 10, allow_nan=False),
        "cpu_s": st.floats(0, 10, allow_nan=False),
    }
)
_msg_event = st.fixed_dictionaries(
    {
        "event": st.sampled_from(["msg.sent", "msg.delivered"]),
        "id": st.integers(0, 100),
        "slot": st.integers(0, 100),
    }
)
_lifecycle_event = st.fixed_dictionaries(
    {
        "event": st.sampled_from(["sim.slot", "two_stage.start", "market.created"]),
        "slot": st.integers(0, 100),
    }
)
_event_stream = st.lists(
    st.one_of(_round_event, _span_event, _msg_event, _lifecycle_event),
    max_size=25,
)


class TestCanonicalize:
    def test_drops_manifest_and_spans(self):
        events = [
            {"event": "manifest", "schema_version": 1},
            {"event": "span", "name": "x", "wall_s": 1.0},
            {"event": "stage1.round", "round": 0},
        ]
        canonical, origins = canonicalize_events(events)
        assert canonical == [{"event": "stage1.round", "round": 0}]
        assert origins == [2]

    def test_strips_volatile_keys_but_keeps_payload(self):
        events = [{"event": "sim.slot", "slot": 3, "wall_s": 0.123}]
        canonical, _ = canonicalize_events(events)
        assert canonical == [{"event": "sim.slot", "slot": 3}]
        # The input stream is left untouched.
        assert "wall_s" in events[0]

    def test_rounds_only_keeps_round_events(self):
        events = [
            {"event": "sim.slot", "slot": 0},
            {"event": "stage1.round", "round": 0},
            {"event": "msg.sent", "id": 1, "slot": 0},
            {"event": "stage2.transfer_round", "round": 0},
        ]
        canonical, origins = canonicalize_events(events, rounds_only=True)
        assert [e["event"] for e in canonical] == [
            "stage1.round",
            "stage2.transfer_round",
        ]
        assert origins == [1, 3]


class TestDiff:
    def test_golden_self_diff_is_clean(self):
        events = load_events(GOLDEN_PATH)
        diff = diff_traces(events, copy.deepcopy(events))
        assert not diff.diverged
        assert "no divergence" in format_diff(diff)

    def test_timing_differences_are_not_divergence(self):
        left = [
            {"event": "span", "name": "solve", "wall_s": 1.0, "cpu_s": 1.0},
            {"event": "sim.slot", "slot": 0, "wall_s": 0.5},
        ]
        right = [
            {"event": "span", "name": "solve", "wall_s": 9.0, "cpu_s": 9.0},
            {"event": "sim.slot", "slot": 0, "wall_s": 0.7},
        ]
        assert not diff_traces(left, right).diverged

    def test_payload_difference_reports_keys_and_slot(self):
        left = [
            {"event": "sim.slot", "slot": 0},
            {"event": "msg.sent", "id": 1, "slot": 1, "src": "a", "dst": "b",
             "type": "Note", "trace": 1, "parent": None},
        ]
        right = [
            {"event": "sim.slot", "slot": 0},
            {"event": "msg.sent", "id": 1, "slot": 1, "src": "a", "dst": "c",
             "type": "Note", "trace": 1, "parent": None},
        ]
        diff = diff_traces(left, right)
        assert diff.diverged
        assert diff.index == 1
        assert diff.differing_keys == ("dst",)
        assert diff.slot == 1
        # The divergent event is a traced message: its chain is the context.
        assert diff.left_chain and diff.left_chain[-1]["id"] == 1

    def test_prefix_trace_diverges_at_truncation_point(self):
        events = load_events(GOLDEN_PATH)
        diff = diff_traces(events, events[:-1], left_label="full",
                           right_label="truncated")
        assert diff.diverged
        assert diff.index == len(events) - 1
        assert diff.right_event is None
        assert "(stream ended)" in format_diff(diff)

    def test_labels_flow_into_report(self):
        diff = diff_traces([], [], left_label="a.jsonl", right_label="b.jsonl")
        assert "a.jsonl vs b.jsonl" in format_diff(diff)

    def test_rounds_only_ignores_envelope_difference(self):
        # A CLI trace (manifest + lifecycle + rounds) aligned against the
        # bare golden rounds: identical behaviour, different envelope.
        golden = load_events(GOLDEN_PATH)
        rounds = [
            e for e in golden
            if e["event"].startswith(("stage1.", "stage2."))
        ]
        wrapped = (
            [{"event": "manifest", "schema_version": 1}]
            + golden
            + [{"event": "span", "name": "solve", "wall_s": 1.0}]
        )
        assert diff_traces(wrapped, rounds, rounds_only=True).diverged is False


class TestDiffProperties:
    @settings(max_examples=60, deadline=None)
    @given(_event_stream)
    def test_self_diff_never_diverges(self, events):
        diff = diff_traces(events, copy.deepcopy(events))
        assert not diff.diverged
        assert "no divergence" in format_diff(diff)

    @settings(max_examples=60, deadline=None)
    @given(_event_stream, st.data())
    def test_mutating_one_canonical_event_always_diverges(self, events, data):
        canonical, origins = canonicalize_events(events)
        if not canonical:
            return
        position = data.draw(st.integers(0, len(canonical) - 1))
        mutated = copy.deepcopy(events)
        mutated[origins[position]]["event"] = "mutated.event"
        diff = diff_traces(events, mutated)
        assert diff.diverged
        assert diff.index is not None and diff.index <= position
