"""Chrome trace-event and OpenMetrics exporters."""

from __future__ import annotations

import json
import os
import re

from repro.obs import MetricsRegistry
from repro.trace import (
    counters_from_events,
    load_events,
    to_chrome_trace,
    to_openmetrics,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_two_stage_trace.jsonl"
)


class TestChromeTrace:
    def test_output_is_json_serialisable(self):
        document = to_chrome_trace(load_events(GOLDEN_PATH))
        encoded = json.dumps(document)
        assert json.loads(encoded) == document
        assert document["displayTimeUnit"] == "ms"

    def test_process_metadata_present(self):
        document = to_chrome_trace([])
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"spans", "messages"}

    def test_spans_with_start_s_placed_on_real_timeline(self):
        events = [
            {"event": "span", "name": "child", "depth": 1, "parent": 0,
             "wall_s": 0.5, "cpu_s": 0.5, "start_s": 100.25},
            {"event": "span", "name": "root", "depth": 0, "parent": -1,
             "wall_s": 2.0, "cpu_s": 2.0, "start_s": 100.0},
        ]
        xs = {
            e["name"]: e
            for e in to_chrome_trace(events)["traceEvents"]
            if e["ph"] == "X"
        }
        assert xs["root"]["ts"] == 0.0  # earliest start is the origin
        assert xs["child"]["ts"] == 250_000.0  # +0.25 s in microseconds
        assert xs["child"]["dur"] == 500_000.0
        assert xs["child"]["tid"] == 1  # one track per nesting depth

    def test_spans_without_start_s_laid_back_to_back(self):
        events = [
            {"event": "span", "name": "a", "depth": 0, "wall_s": 1.0},
            {"event": "span", "name": "b", "depth": 0, "wall_s": 2.0},
        ]
        xs = [e for e in to_chrome_trace(events)["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["ts"] == 0.0
        assert xs[1]["ts"] == 1_000_000.0  # starts where span "a" ended

    def test_messages_get_per_agent_tracks_on_slot_clock(self):
        events = [
            {"event": "msg.sent", "id": 1, "trace": 1, "parent": None,
             "slot": 3, "src": "buyer:0", "dst": "seller:1", "type": "Propose"},
            {"event": "msg.dropped", "id": 1, "slot": 3, "reason": "network"},
        ]
        document = to_chrome_trace(events)
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 2
        assert all(e["ts"] == 3000.0 for e in instants)  # slot 3 -> 3 ms
        threads = {
            e["tid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # Sent is tracked on the source; the drop is recovered onto the
        # destination's track via the original send.
        assert set(threads.values()) == {"buyer:0", "seller:1"}


class TestOpenMetrics:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("runs.total").inc(3)
        registry.gauge("queue depth").set(2.5)
        registry.timer("solve").observe(0.25)
        histogram = registry.histogram(
            "msg.sizes", boundaries=[1.0, 10.0, 100.0]
        )
        for value in [0.5, 5.0, 50.0, 500.0]:
            histogram.observe(value)
        return registry.snapshot()

    def test_sections_and_terminator(self):
        text = to_openmetrics(self._snapshot())
        assert "# TYPE runs_total counter" in text
        assert "runs_total_total 3" in text
        assert "# TYPE queue_depth gauge" in text  # space sanitised
        assert "queue_depth 2.5" in text
        assert "# TYPE solve summary" in text
        assert "solve_count 1" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative(self):
        text = to_openmetrics(self._snapshot())
        assert 'msg_sizes_bucket{le="1"} 1' in text
        assert 'msg_sizes_bucket{le="10"} 2' in text
        assert 'msg_sizes_bucket{le="100"} 3' in text
        assert 'msg_sizes_bucket{le="+Inf"} 4' in text
        assert "msg_sizes_count 4" in text
        assert "msg_sizes_sum 555.5" in text

    def test_metric_names_sanitised(self):
        text = to_openmetrics(
            {"counters": {"a.b/c d": 1}, "gauges": {}, "timers": {},
             "histograms": {}}
        )
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = line.split()[0]
            assert re.fullmatch(r"[a-zA-Z0-9_:{}=\"+.]+", name), name

    def test_none_gauges_skipped(self):
        text = to_openmetrics(
            {"counters": {}, "gauges": {"unset": None}, "timers": {},
             "histograms": {}}
        )
        assert "unset" not in text


class TestCountersFromEvents:
    def test_counts_by_event_type(self):
        snapshot = counters_from_events(load_events(GOLDEN_PATH))
        counters = snapshot["counters"]
        assert counters["trace.events.stage1.round"] == 4
        assert counters["trace.events.stage2.transfer_round"] == 3
        assert counters["trace.events.two_stage.result"] == 1
        assert sum(counters.values()) == 9

    def test_feeds_straight_into_openmetrics(self):
        text = to_openmetrics(counters_from_events(load_events(GOLDEN_PATH)))
        assert "trace_events_stage1_round_total 4" in text
        assert text.endswith("# EOF\n")


class TestParseOpenMetrics:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("sim.slots").inc(40)
        registry.counter("sim.messages_sent").inc(1200)
        registry.gauge("two_stage.welfare_phase2").set(30.25)
        timer = registry.timer("stage1.solve_s")
        timer.observe(0.5)
        timer.observe(1.5)
        histogram = registry.histogram("sim.agent_step_s")
        for value in (0.0015, 0.003, 0.02, 0.02, 0.4):
            histogram.observe(value)
        return registry

    def test_round_trips_counters_gauges_timers(self):
        from repro.trace import parse_openmetrics

        snapshot = parse_openmetrics(to_openmetrics(self._registry().snapshot()))
        assert snapshot["counters"]["sim_slots"] == 40
        assert snapshot["counters"]["sim_messages_sent"] == 1200
        assert snapshot["gauges"]["two_stage_welfare_phase2"] == 30.25
        timer = snapshot["timers"]["stage1_solve_s"]
        assert timer["count"] == 2
        assert timer["total_s"] == 2.0
        assert timer["mean_s"] == 1.0

    def test_histogram_buckets_decumulated(self):
        from repro.trace import parse_openmetrics

        original = self._registry().snapshot()["histograms"]["sim.agent_step_s"]
        parsed = parse_openmetrics(to_openmetrics(self._registry().snapshot()))
        histogram = parsed["histograms"]["sim_agent_step_s"]
        assert histogram["count"] == original["count"]
        assert histogram["sum"] == original["sum"]
        assert histogram["bucket_counts"] == original["bucket_counts"]
        assert histogram["boundaries"] == original["boundaries"]

    def test_histogram_quantiles_usable_after_round_trip(self):
        from repro.obs.metrics import snapshot_quantile
        from repro.trace import parse_openmetrics

        parsed = parse_openmetrics(to_openmetrics(self._registry().snapshot()))
        histogram = parsed["histograms"]["sim_agent_step_s"]
        p50 = snapshot_quantile(histogram, 0.5)
        p99 = snapshot_quantile(histogram, 0.99)
        assert 0.0 < p50 <= p99  # approximated extremes stay ordered

    def test_missing_eof_rejected(self):
        import pytest

        from repro.errors import ObservabilityError
        from repro.trace import parse_openmetrics

        text = to_openmetrics(self._registry().snapshot())
        with pytest.raises(ObservabilityError):
            parse_openmetrics(text.replace("# EOF\n", ""))

    def test_malformed_sample_rejected(self):
        import pytest

        from repro.errors import ObservabilityError
        from repro.trace import parse_openmetrics

        with pytest.raises(ObservabilityError):
            parse_openmetrics("# TYPE x counter\nx_total not-a-number\n# EOF\n")

    def test_empty_exposition_parses(self):
        from repro.trace import parse_openmetrics

        snapshot = parse_openmetrics("# EOF\n")
        assert snapshot == {
            "counters": {}, "gauges": {}, "timers": {}, "histograms": {}
        }
