"""CausalGraph over kernel-emitted message events.

Synthetic streams pin the graph semantics exactly; the end-to-end class
runs the real protocol (perfect, lossy+ARQ, and crashing networks) and
checks the invariants the kernel promises: conservation of messages,
consistent trace ids, and retransmissions parented to their originals.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.distributed.faults import CrashFault, FaultSchedule
from repro.distributed.network import LossyNetwork
from repro.distributed.protocol import run_distributed_matching
from repro.errors import ObservabilityError
from repro.obs import ListEventSink, Recorder
from repro.trace import CausalGraph, format_chain
from repro.workloads.scenarios import paper_simulation_market

import numpy as np


def _sent(msg_id, parent, trace, slot=0, src="a", dst="b", mtype="Note"):
    return {
        "event": "msg.sent",
        "id": msg_id,
        "trace": trace,
        "parent": parent,
        "slot": slot,
        "src": src,
        "dst": dst,
        "type": mtype,
    }


class TestGraphSemantics:
    def _three_hop(self) -> CausalGraph:
        return CausalGraph(
            [
                _sent(0, None, 0, slot=0, src="a", dst="b"),
                {"event": "msg.delivered", "id": 0, "slot": 1, "dst": "b"},
                _sent(1, 0, 0, slot=1, src="b", dst="c"),
                {"event": "msg.delivered", "id": 1, "slot": 2, "dst": "c"},
                _sent(2, 1, 0, slot=2, src="c", dst="a"),
                {"event": "msg.dropped", "id": 2, "slot": 2, "reason": "network"},
            ]
        )

    def test_chain_walks_root_first(self):
        graph = self._three_hop()
        assert [e["id"] for e in graph.chain(2)] == [0, 1, 2]
        assert [e["id"] for e in graph.chain(0)] == [0]

    def test_outcomes(self):
        graph = self._three_hop()
        assert graph.outcome(0) == "delivered"
        assert graph.outcome(2) == "dropped (network)"
        graph2 = CausalGraph([_sent(5, None, 5)])
        assert graph2.outcome(5) == "in flight"

    def test_unknown_id_raises(self):
        with pytest.raises(ObservabilityError, match="no msg.sent"):
            self._three_hop().chain(99)

    def test_cycle_detected(self):
        graph = CausalGraph([_sent(0, 1, 0), _sent(1, 0, 0)])
        with pytest.raises(ObservabilityError, match="cycle"):
            graph.chain(0)

    def test_explain_returns_leaf_chains_latest_first(self):
        graph = self._three_hop()
        chains = graph.explain("a")
        # Single leaf (#2): one chain, ending at a's inbound drop.
        assert len(chains) == 1
        assert [e["id"] for e in chains[0]] == [0, 1, 2]
        with pytest.raises(ObservabilityError, match="no traced messages"):
            graph.explain("nobody")

    def test_retransmission_detection(self):
        graph = CausalGraph(
            [
                _sent(0, None, 0, mtype="DataFrame"),
                _sent(1, 0, 0, mtype="DataFrame"),  # same type/src/dst: ARQ
                _sent(2, 0, 0, src="b", dst="c"),   # different endpoints: not
            ]
        )
        assert [e["id"] for e in graph.retransmissions()] == [1]

    def test_format_chain_is_indented_and_annotated(self):
        graph = self._three_hop()
        text = format_chain(graph, graph.chain(2))
        lines = text.splitlines()
        assert lines[0].startswith("[slot 0] #0 Note a -> b: delivered")
        assert lines[2].lstrip().startswith("[slot 2] #2 Note c -> a: dropped")
        assert lines[2].startswith("    ")  # depth-2 indent


class TestKernelTraces:
    """The real protocol's traces satisfy the kernel's causal contract."""

    def _run(self, **kwargs) -> List[dict]:
        market = paper_simulation_market(12, 3, np.random.default_rng(5))
        sink = ListEventSink()
        run_distributed_matching(
            market, seed=5, recorder=Recorder(events=sink), **kwargs
        )
        return sink.events

    def test_perfect_network_conserves_messages(self):
        events = self._run()
        graph = CausalGraph(events)
        assert len(graph) > 0
        # Every send is accounted for: delivered or dropped, nothing lost.
        for msg_id in graph.sent:
            assert graph.outcome(msg_id) == "delivered"

    def test_trace_id_is_root_of_chain(self):
        graph = CausalGraph(self._run())
        for msg_id, event in graph.sent.items():
            chain = graph.chain(msg_id)
            assert chain[0]["trace"] == event["trace"]
            assert chain[0]["parent"] is None

    def test_lossy_arq_retransmissions_parented_to_original(self):
        events = self._run(
            network=LossyNetwork(0.15), reliable_transport=True
        )
        graph = CausalGraph(events)
        drops = [e for e in events if e["event"] == "msg.dropped"]
        assert drops, "loss rate 0.15 should drop at least one frame"
        assert all(d["reason"] == "network" for d in drops)
        retransmits = graph.retransmissions()
        assert retransmits, "ARQ must have retransmitted the dropped frames"
        for event in retransmits:
            original = graph.sent[int(event["parent"])]
            assert original["type"] == event["type"]
            assert original["slot"] <= event["slot"]

    def test_crash_drops_carry_crash_reasons(self):
        schedule = FaultSchedule(
            crashes=[CrashFault(agent_id="seller:1", crash_slot=2, restart_slot=8)]
        )
        events = self._run(fault_schedule=schedule, reliable_transport=True)
        graph = CausalGraph(events)
        crash_reasons = {
            reason
            for reason in graph.dropped.values()
            if reason in ("crashed_destination", "crash_purge")
        }
        assert crash_reasons, "crash faults must surface as msg.dropped"
        # Conservation still holds: delivered or dropped, never vanished.
        for msg_id in graph.sent:
            assert graph.outcome(msg_id) != "in flight"
