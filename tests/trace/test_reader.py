"""TraceReader: parsing, manifest validation, and run summaries.

The committed golden trace (``tests/data/golden_two_stage_trace.jsonl``)
doubles as the reference input here: it predates the manifest, so it
also pins the rule that manifest-less traces stay readable.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.core.trace import StageOneRound, TransferRound
from repro.errors import ObservabilityError
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    JsonlEventSink,
    Recorder,
    build_manifest,
)
from repro.trace import TraceReader, format_summary, load_events

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_two_stage_trace.jsonl"
)


class TestLoadEvents:
    def test_reads_file_by_path(self):
        events = load_events(GOLDEN_PATH)
        assert len(events) == 9
        assert events[0]["event"] == "two_stage.start"
        assert events[-1]["event"] == "two_stage.result"

    def test_reads_iterable_of_lines(self):
        events = load_events(['{"event": "a"}', "", '{"event": "b", "n": 1}'])
        assert events == [{"event": "a"}, {"event": "b", "n": 1}]

    def test_bad_json_reports_line_number(self):
        with pytest.raises(ObservabilityError, match=r"<stream>:2:"):
            load_events(['{"event": "ok"}', "{not json"])

    def test_non_event_object_rejected(self):
        with pytest.raises(ObservabilityError, match=r"<stream>:1:"):
            load_events(['{"no_event_key": true}'])
        with pytest.raises(ObservabilityError, match=r"<stream>:1:"):
            load_events(["[1, 2, 3]"])


class TestManifestValidation:
    def _trace_with_manifest(self, **overrides) -> list:
        manifest = build_manifest(seed=7)
        manifest.update(overrides)
        buffer = io.StringIO()
        sink = JsonlEventSink(buffer, manifest=manifest)
        sink.emit({"event": "two_stage.start", "buyers": 3, "channels": 2})
        sink.close()
        return load_events(buffer.getvalue().splitlines())

    def test_round_trip_through_jsonl_sink(self):
        reader = TraceReader(self._trace_with_manifest())
        assert reader.manifest is not None
        assert reader.manifest["seed"] == 7
        assert reader.manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert reader.summary().seed == 7

    def test_manifest_optional(self):
        reader = TraceReader.from_file(GOLDEN_PATH)
        assert reader.manifest is None
        assert reader.summary().seed is None

    def test_future_schema_rejected(self):
        events = self._trace_with_manifest(
            schema_version=MANIFEST_SCHEMA_VERSION + 1
        )
        with pytest.raises(ObservabilityError, match="schema_version"):
            TraceReader(events)

    def test_non_integer_schema_rejected(self):
        events = self._trace_with_manifest(schema_version="1")
        with pytest.raises(ObservabilityError, match="schema_version"):
            TraceReader(events)

    def test_duplicate_manifest_rejected(self):
        events = self._trace_with_manifest()
        events.append(dict(events[0]))
        with pytest.raises(ObservabilityError, match="manifest"):
            TraceReader(events)


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def reader(self):
        return TraceReader.from_file(GOLDEN_PATH)

    def test_rounds_reconstruct_via_codec(self, reader):
        rounds = reader.rounds()
        assert len(rounds) == 7
        assert isinstance(rounds[0], StageOneRound)
        assert sum(isinstance(r, StageOneRound) for r in rounds) == 4
        assert sum(isinstance(r, TransferRound) for r in rounds) == 3

    def test_summary_round_counts(self, reader):
        summary = reader.summary()
        assert summary.num_events == 9
        assert summary.rounds_stage1 == 4
        assert summary.rounds_transfer == 3
        assert summary.rounds_invitation == 0
        assert summary.rounds_to_convergence == 7

    def test_summary_welfare_trajectory_matches_result_event(self, reader):
        result = reader.of_type("two_stage.result")[0]
        trajectory = dict(reader.summary().welfare_trajectory)
        assert trajectory["stage1"] == result["welfare_stage1"]
        assert trajectory["phase2"] == result["welfare_phase2"]
        assert trajectory["phase2"] >= trajectory["stage1"]

    def test_summary_per_seller_accounting_matches_rounds(self, reader):
        summary = reader.summary()
        proposals = sum(
            len(targets)
            for r in reader.rounds()
            if isinstance(r, StageOneRound)
            for targets in r.proposals.values()
        )
        assert sum(s["proposals"] for s in summary.per_seller.values()) == proposals

    def test_summary_no_messages_in_core_trace(self, reader):
        summary = reader.summary()
        assert summary.messages_sent == 0
        assert summary.messages_delivered == 0
        assert summary.messages_dropped == 0

    def test_format_summary_renders(self, reader):
        text = format_summary(reader.summary())
        assert "rounds: 7 to convergence" in text
        assert "golden_two_stage_trace.jsonl" in text


class TestSummaryFromSyntheticEvents:
    def test_message_accounting_and_drop_reasons(self):
        events = [
            {"event": "msg.sent", "id": 1, "trace": 1, "parent": None,
             "slot": 0, "src": "a", "dst": "b", "type": "Note"},
            {"event": "msg.delivered", "id": 1, "slot": 1, "dst": "b"},
            {"event": "msg.sent", "id": 2, "trace": 2, "parent": None,
             "slot": 1, "src": "a", "dst": "b", "type": "Note"},
            {"event": "msg.dropped", "id": 2, "slot": 1, "reason": "network"},
            {"event": "sim.slot", "slot": 2},
        ]
        events.append(
            {"event": "distributed.run_end", "slots": 3, "social_welfare": 1.5}
        )
        summary = TraceReader(events).summary()
        assert summary.messages_sent == 2
        assert summary.messages_delivered == 1
        assert summary.messages_dropped == 1
        assert summary.drop_reasons == {"network": 1}
        assert summary.slots == 3
        assert ("final", 1.5) in summary.welfare_trajectory

    def test_stage2_accounting_credits_gaining_seller(self):
        # Accepted entries are (buyer, from_channel, to_channel) triples
        # and invitation declines are (channel, buyer) pairs -- the toy
        # run's trace exercises both, so the unpacking shapes matter.
        events = [
            {"event": "stage2.transfer_round", "round": 1,
             "applications": {"2": [0]},
             "accepted": [[0, -1, 2]], "rejected": [[3, 2]]},
            {"event": "stage2.invitation_round", "round": 1,
             "invitations": [[1, 4]],
             "accepted": [[4, 0, 1]], "declined": [[1, 5]]},
        ]
        summary = TraceReader(events).summary()
        assert summary.per_seller[2]["applications"] == 1
        assert summary.per_seller[2]["accepted"] == 1
        assert summary.per_seller[2]["rejected"] == 1
        assert summary.per_seller[1]["accepted"] == 1
        assert summary.per_seller[1]["rejected"] == 1

    def test_mwis_share_from_spans(self):
        events = [
            {"event": "span", "name": "two_stage", "depth": 0, "parent": -1,
             "wall_s": 2.0, "cpu_s": 2.0},
            {"event": "span", "name": "stage1.mwis", "depth": 1, "parent": 0,
             "wall_s": 0.5, "cpu_s": 0.5},
        ]
        summary = TraceReader(events).summary()
        assert summary.mwis_wall_s == pytest.approx(0.5)
        assert summary.total_wall_s == pytest.approx(2.0)
        assert summary.mwis_share == pytest.approx(0.25)

    def test_json_round_trip_of_summary_fields(self):
        # Every summary field must be JSON-safe (CLI prints it; exporters
        # may serialise it): tuples/dicts of primitives only.
        summary = TraceReader.from_file(GOLDEN_PATH).summary()
        json.dumps(
            {
                "rounds": summary.rounds_to_convergence,
                "per_seller": summary.per_seller,
                "welfare": summary.welfare_trajectory,
                "drop_reasons": summary.drop_reasons,
            }
        )
