"""Shared fixtures for the spectrum-matching test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.scenarios import (
    counterexample_market,
    paper_simulation_market,
    toy_example_market,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for individual tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def toy_market():
    """The paper's Fig. 1-3 toy example."""
    return toy_example_market()


@pytest.fixture
def ce_market():
    """The Section III-D counterexample instance."""
    return counterexample_market()


@pytest.fixture
def market_factory():
    """Factory producing seeded paper-workload markets on demand."""

    def make(num_buyers: int = 10, num_channels: int = 4, seed: int = 0, **kwargs):
        return paper_simulation_market(
            num_buyers, num_channels, np.random.default_rng(seed), **kwargs
        )

    return make
