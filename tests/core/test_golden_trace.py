"""Golden-trace regression test for the two-stage pipeline.

``tests/data/golden_two_stage_trace.jsonl`` is the committed, reviewed
observability event stream of one small reference market.  The test
replays the identical market and asserts the emitted JSONL matches the
golden file *byte for byte*, on both kernel paths -- any change to
proposal order, tie-breaking, rejection bookkeeping or event encoding
shows up as a diff here before it can silently alter reproduction
results.

Regenerate (after an intentional behaviour change) with::

    PYTHONPATH=src python tests/core/test_golden_trace.py

and review the diff like any other source change.
"""

from __future__ import annotations

import io
import os

import numpy as np
import pytest

from repro.core.soa import BATCH_STAGE1_ENV
from repro.core.two_stage import run_two_stage
from repro.interference.bitset import FAST_KERNELS_ENV
from repro.obs import JsonlEventSink, Recorder, use_recorder
from repro.workloads.scenarios import paper_simulation_market

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_two_stage_trace.jsonl"
)

#: The reference market: small enough to review its trace by hand, big
#: enough to exercise rejections, evictions and both Stage-II phases.
MARKET_PARAMS = dict(num_buyers=20, num_channels=4, rng_seed=[42, 20])


def generate_trace() -> str:
    """Run the reference market and return its event stream as text.

    Events only (no manifest, no spans, no metrics): everything written
    is a deterministic function of the market, so the output is stable
    across machines and runs.
    """
    market = paper_simulation_market(
        MARKET_PARAMS["num_buyers"],
        MARKET_PARAMS["num_channels"],
        np.random.default_rng(MARKET_PARAMS["rng_seed"]),
    )
    buffer = io.StringIO()
    recorder = Recorder(events=JsonlEventSink(buffer))
    with recorder, use_recorder(recorder):
        run_two_stage(market)
    return buffer.getvalue()


@pytest.mark.parametrize("kernel_mode", ["batched", "scalar", "reference"])
def test_trace_matches_golden_file(monkeypatch, kernel_mode):
    """All three Stage-I paths must replay the golden trace byte-exactly.

    ``batched`` is the default SoA fast path, ``scalar`` the per-seller
    bitset kernels (``SPECTRUM_BATCH_STAGE1=0``), ``reference`` the
    set-based loops (``SPECTRUM_FAST_KERNELS=0``).
    """
    monkeypatch.delenv(FAST_KERNELS_ENV, raising=False)
    monkeypatch.delenv(BATCH_STAGE1_ENV, raising=False)
    if kernel_mode == "scalar":
        monkeypatch.setenv(BATCH_STAGE1_ENV, "0")
    elif kernel_mode == "reference":
        monkeypatch.setenv(FAST_KERNELS_ENV, "0")
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert generate_trace() == golden


def test_golden_file_is_nontrivial():
    """Guard against an accidentally truncated/empty committed trace."""
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert len(lines) >= 4
    assert any('"stage1.round"' in line for line in lines)
    assert any('"two_stage.result"' in line for line in lines)


if __name__ == "__main__":
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        handle.write(generate_trace())
    print(f"wrote {os.path.normpath(GOLDEN_PATH)}")
