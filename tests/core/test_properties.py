"""Hypothesis property tests: the paper's theorems on random markets.

Propositions 1-4 claim convergence, individual rationality and Nash
stability for every market.  These tests generate arbitrary small markets
(random interference, random utilities, including degenerate cases like
all-zero prices or complete conflict graphs) and check each claim.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deferred_acceptance import deferred_acceptance
from repro.core.market import SpectrumMarket
from repro.core.stability import (
    is_individually_rational,
    is_nash_stable,
)
from repro.core.two_stage import run_two_stage
from repro.interference.graph import InterferenceGraph, InterferenceMap
from repro.interference.mwis import MwisAlgorithm


@st.composite
def markets(draw, max_buyers: int = 7, max_channels: int = 4):
    """Arbitrary small spectrum markets."""
    n = draw(st.integers(min_value=1, max_value=max_buyers))
    m = draw(st.integers(min_value=1, max_value=max_channels))
    utilities = np.array(
        [
            [
                draw(
                    st.one_of(
                        st.just(0.0),
                        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                    )
                )
                for _ in range(m)
            ]
            for _ in range(n)
        ]
    )
    graphs = []
    possible_edges = [(j, k) for j in range(n) for k in range(j + 1, n)]
    for _ in range(m):
        if possible_edges:
            edges = draw(
                st.lists(
                    st.sampled_from(possible_edges),
                    unique=True,
                    max_size=len(possible_edges),
                )
            )
        else:
            edges = []
        graphs.append(InterferenceGraph(n, edges))
    algorithm = draw(st.sampled_from([MwisAlgorithm.GWMIN, MwisAlgorithm.EXACT]))
    return SpectrumMarket(utilities, InterferenceMap(graphs), mwis_algorithm=algorithm)


@given(markets())
@settings(max_examples=200, deadline=None)
def test_stage_one_converges_within_budget(market):
    """Proposition 1: Stage I ends within N*M proposals."""
    result = deferred_acceptance(market)
    assert result.total_proposals <= market.num_buyers * market.num_channels
    assert result.num_rounds <= market.num_buyers * market.num_channels


@given(markets())
@settings(max_examples=200, deadline=None)
def test_stage_one_output_feasible(market):
    result = deferred_acceptance(market)
    assert result.matching.is_interference_free(market.interference)
    result.matching.assert_consistent()


@given(markets())
@settings(max_examples=200, deadline=None)
def test_two_stage_individually_rational(market):
    """Proposition 3."""
    result = run_two_stage(market, record_trace=False)
    assert is_individually_rational(market, result.matching)


@given(markets())
@settings(max_examples=200, deadline=None)
def test_two_stage_nash_stable(market):
    """Proposition 4."""
    result = run_two_stage(market, record_trace=False)
    assert is_nash_stable(market, result.matching)


@given(markets())
@settings(max_examples=150, deadline=None)
def test_stage_two_weakly_improves_every_buyer(market):
    result = run_two_stage(market, record_trace=False)
    for j in range(market.num_buyers):
        before = result.stage_one.matching.buyer_utility(j, market.utilities)
        after = result.matching.buyer_utility(j, market.utilities)
        assert after >= before - 1e-12


@given(markets())
@settings(max_examples=150, deadline=None)
def test_determinism(market):
    first = run_two_stage(market, record_trace=False)
    second = run_two_stage(market, record_trace=False)
    assert first.matching == second.matching
    assert first.total_rounds == second.total_rounds
