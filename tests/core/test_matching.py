"""Unit tests for the Matching structure (Definition 1 consistency)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching import Matching
from repro.errors import MatchingConsistencyError
from repro.interference.graph import InterferenceGraph, InterferenceMap


@pytest.fixture
def matching():
    return Matching(num_channels=3, num_buyers=5)


class TestBasicOperations:
    def test_initially_everyone_unmatched(self, matching):
        assert matching.num_matched() == 0
        assert all(matching.channel_of(j) is None for j in range(5))
        assert all(matching.coalition(i) == frozenset() for i in range(3))

    def test_match_updates_both_directions(self, matching):
        matching.match(2, 1)
        assert matching.channel_of(2) == 1
        assert matching.coalition(1) == frozenset({2})
        assert matching.is_matched(2)
        matching.assert_consistent()

    def test_double_match_raises(self, matching):
        matching.match(0, 0)
        with pytest.raises(MatchingConsistencyError):
            matching.match(0, 1)

    def test_unmatch_returns_old_channel(self, matching):
        matching.match(1, 2)
        assert matching.unmatch(1) == 2
        assert matching.channel_of(1) is None
        assert matching.unmatch(1) is None  # idempotent

    def test_move(self, matching):
        matching.match(3, 0)
        assert matching.move(3, 2) == 0
        assert matching.channel_of(3) == 2
        assert matching.coalition(0) == frozenset()
        matching.assert_consistent()

    def test_move_of_unmatched_buyer(self, matching):
        assert matching.move(4, 1) is None
        assert matching.channel_of(4) == 1

    def test_index_validation(self, matching):
        with pytest.raises(MatchingConsistencyError):
            matching.match(9, 0)
        with pytest.raises(MatchingConsistencyError):
            matching.match(0, 9)
        with pytest.raises(MatchingConsistencyError):
            matching.channel_of(-1)

    def test_needs_nonempty_dimensions(self):
        with pytest.raises(MatchingConsistencyError):
            Matching(0, 5)


class TestSetCoalition:
    def test_replaces_wholesale(self, matching):
        matching.set_coalition(0, [1, 2])
        matching.set_coalition(0, [2, 3])
        assert matching.coalition(0) == frozenset({2, 3})
        assert matching.channel_of(1) is None
        matching.assert_consistent()

    def test_cannot_steal_from_other_channel(self, matching):
        matching.match(1, 2)
        with pytest.raises(MatchingConsistencyError):
            matching.set_coalition(0, [1])

    def test_keeping_member_on_same_channel_is_fine(self, matching):
        matching.set_coalition(1, [0, 4])
        matching.set_coalition(1, [4])  # 4 stays, 0 released
        assert matching.channel_of(4) == 1
        assert matching.channel_of(0) is None


class TestScoring:
    @pytest.fixture
    def utilities(self):
        # (N=5, M=3)
        return np.arange(15, dtype=float).reshape(5, 3)

    def test_social_welfare(self, matching, utilities):
        matching.match(0, 1)  # b=utilities[0,1]=1
        matching.match(4, 2)  # utilities[4,2]=14
        assert matching.social_welfare(utilities) == 15.0

    def test_buyer_utility(self, matching, utilities):
        matching.match(2, 0)
        assert matching.buyer_utility(2, utilities) == 6.0
        assert matching.buyer_utility(3, utilities) == 0.0

    def test_seller_revenue(self, matching, utilities):
        matching.match(0, 1)
        matching.match(3, 1)
        assert matching.seller_revenue(1, utilities) == 1.0 + 10.0
        assert matching.seller_revenue(0, utilities) == 0.0

    def test_interference_free_check(self, matching):
        imap = InterferenceMap(
            [InterferenceGraph(5, [(0, 1)]), InterferenceGraph(5), InterferenceGraph(5)]
        )
        matching.match(0, 0)
        matching.match(1, 0)
        assert not matching.is_interference_free(imap)
        matching.move(1, 1)  # channel 1 has no conflicts
        assert matching.is_interference_free(imap)


class TestCopyAndEquality:
    def test_copy_is_deep(self, matching):
        matching.match(0, 0)
        clone = matching.copy()
        clone.match(1, 0)
        assert matching.coalition(0) == frozenset({0})
        assert clone.coalition(0) == frozenset({0, 1})

    def test_equality_by_assignment(self, matching):
        other = Matching(3, 5)
        assert matching == other
        matching.match(0, 0)
        assert matching != other
        other.match(0, 0)
        assert matching == other
        assert matching != "something else"

    def test_as_assignment_snapshot(self, matching):
        matching.match(1, 2)
        snapshot = matching.as_assignment()
        assert snapshot == (None, 2, None, None, None)
        matching.unmatch(1)
        assert snapshot == (None, 2, None, None, None)  # snapshot unaffected

    def test_matched_buyers_iteration(self, matching):
        matching.match(4, 0)
        matching.match(2, 1)
        assert sorted(matching.matched_buyers()) == [(2, 1), (4, 0)]
