"""Trace-record invariants tying results, traces, and the JSONL stream.

Two contracts the observability layer leans on:

* ``TwoStageResult.total_rounds`` equals the sum of the per-stage trace
  lengths, so round counters derived from either source agree.
* Every round event emitted to a JSONL sink decodes (``json.loads`` +
  ``event_to_round``) back to exactly the dataclass that was recorded.
"""

from __future__ import annotations

import json

import pytest

from repro.core.trace import InvitationRound, StageOneRound, TransferRound
from repro.core.two_stage import run_two_stage
from repro.obs import JsonlEventSink, Recorder, event_to_round

SEEDS = [0, 1, 13, 42]

ROUND_EVENTS = {
    "stage1.round",
    "stage2.transfer_round",
    "stage2.invitation_round",
}


@pytest.mark.parametrize("seed", SEEDS)
def test_total_rounds_equals_sum_of_trace_lengths(market_factory, seed):
    market = market_factory(num_buyers=20, num_channels=5, seed=seed)
    result = run_two_stage(market)
    assert result.total_rounds == (
        len(result.stage_one.rounds)
        + len(result.stage_two.transfer_rounds)
        + len(result.stage_two.invitation_rounds)
    )
    assert result.rounds_stage1 == len(result.stage_one.rounds)
    assert result.rounds_phase1 == len(result.stage_two.transfer_rounds)
    assert result.rounds_phase2 == len(result.stage_two.invitation_rounds)


@pytest.mark.parametrize("seed", SEEDS)
def test_jsonl_stream_round_trips_to_recorded_trace(
    tmp_path, market_factory, seed
):
    market = market_factory(num_buyers=18, num_channels=4, seed=seed)
    path = tmp_path / f"trace_{seed}.jsonl"
    with Recorder(events=JsonlEventSink(str(path))) as recorder:
        result = run_two_stage(market, recorder=recorder)

    decoded = []
    for line in path.read_text().splitlines():
        event = json.loads(line)  # every line must be valid JSON
        if event["event"] in ROUND_EVENTS:
            decoded.append(event_to_round(event))

    recorded = (
        list(result.stage_one.rounds)
        + list(result.stage_two.transfer_rounds)
        + list(result.stage_two.invitation_rounds)
    )
    assert len(decoded) == result.total_rounds
    # Emission order is stage1, then transfers, then invitations — the
    # same order as the concatenated traces.
    assert decoded == recorded


def test_round_trip_preserves_types(tmp_path, toy_market):
    path = tmp_path / "toy.jsonl"
    with Recorder(events=JsonlEventSink(str(path))) as recorder:
        run_two_stage(toy_market, recorder=recorder)
    rounds = [
        event_to_round(event)
        for event in map(json.loads, path.read_text().splitlines())
        if event["event"] in ROUND_EVENTS
    ]
    assert any(isinstance(r, StageOneRound) for r in rounds)
    for record in rounds:
        assert isinstance(
            record, (StageOneRound, TransferRound, InvitationRound)
        )
        assert isinstance(record.round_index, int)
