"""Tests for Stage II: transfer and invitation (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deferred_acceptance import deferred_acceptance
from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.transfer_invitation import transfer_and_invitation
from repro.interference.generators import interference_map_from_edge_lists


def market_of(utilities, per_channel_edges, **kwargs):
    utilities = np.asarray(utilities, dtype=float)
    imap = interference_map_from_edge_lists(utilities.shape[0], per_channel_edges)
    return SpectrumMarket(utilities, imap, **kwargs)


class TestTransferPhase:
    def test_transfer_to_better_channel(self):
        # Buyer 0 starts on channel 1 but channel 0 is better and free.
        market = market_of([[5.0, 2.0]], [[], []])
        start = Matching(2, 1)
        start.match(0, 1)
        result = transfer_and_invitation(market, start)
        assert result.matching.channel_of(0) == 0
        assert result.num_transfer_rounds == 1

    def test_unmatched_buyer_participates(self):
        market = market_of([[3.0]], [[]])
        start = Matching(1, 1)  # buyer unmatched
        result = transfer_and_invitation(market, start)
        assert result.matching.channel_of(0) == 0
        accepted = [a for r in result.transfer_rounds for a in r.accepted]
        assert (0, -1, 0) in accepted  # -1 marks "was unmatched"

    def test_no_eviction_on_transfer(self):
        # Buyer 1 holds channel 0; buyer 0 would pay more but interferes.
        # Stage II must NOT evict buyer 1.
        market = market_of([[9.0, 1.0], [5.0, 0.0]], [[(0, 1)], []])
        start = Matching(2, 2)
        start.match(1, 0)
        start.match(0, 1)
        result = transfer_and_invitation(market, start)
        assert result.matching.channel_of(1) == 0
        assert result.matching.channel_of(0) == 1  # application rejected

    def test_input_matching_not_mutated(self):
        market = market_of([[5.0, 2.0]], [[], []])
        start = Matching(2, 1)
        start.match(0, 1)
        transfer_and_invitation(market, start)
        assert start.channel_of(0) == 1

    def test_simultaneous_decisions_use_round_start_snapshot(self):
        """A seller decides against her coalition BEFORE same-round leavers.

        Buyer 0 transfers from channel 1 to 0; buyer 1 applies to channel 1
        in the same round and interferes with buyer 0 there.  Snapshot
        semantics reject buyer 1 this round (the paper's Fig. 2 behaviour:
        seller c rejects buyer 5 while buyer 2 leaves).
        """
        market = market_of(
            [[9.0, 5.0], [0.0, 4.0]],
            [[], [(0, 1)]],
        )
        start = Matching(2, 2)
        start.match(0, 1)  # buyer 0 on channel 1
        result = transfer_and_invitation(market, start)
        first = result.transfer_rounds[0]
        assert (0, 1, 0) in first.accepted  # 0 moves to channel 0
        assert (1, 1) in first.rejected  # 1 rejected against the snapshot
        # ... but invited afterwards, once 0 is gone (Phase 2).
        assert result.matching.channel_of(1) == 1

    def test_stale_applications_are_skipped(self):
        # Buyer 0 on channel 2 (value 1); prefers 0 (5) then 1 (3).  After
        # winning channel 0 she must NOT "transfer" down to channel 1.
        market = market_of([[5.0, 3.0, 1.0]], [[], [], []])
        start = Matching(3, 1)
        start.match(0, 2)
        result = transfer_and_invitation(market, start)
        assert result.matching.channel_of(0) == 0
        applications = [
            (ch, b)
            for r in result.transfer_rounds
            for ch, buyers in r.applications.items()
            for b in buyers
        ]
        assert (1, 0) not in applications


class TestInvitationPhase:
    def build_invitation_case(self):
        """Buyer 1 is rejected by channel 0 (blocked by buyer 0), buyer 0
        transfers away, channel 0's seller then invites buyer 1."""
        market = market_of(
            [[6.0, 7.0], [3.0, 0.0]],
            [[(0, 1)], []],
        )
        start = Matching(2, 2)
        start.match(0, 0)  # buyer 0 holds channel 0
        # buyer 1 unmatched
        return market, start

    def test_invitation_repairs_rejection(self):
        market, start = self.build_invitation_case()
        result = transfer_and_invitation(market, start)
        # Buyer 0 transferred to channel 1 (7 > 6); buyer 1 was rejected on
        # channel 0 against the snapshot, then invited.
        assert result.matching.channel_of(0) == 1
        assert result.matching.channel_of(1) == 0
        assert result.num_invitation_rounds >= 1
        invited = [
            inv for r in result.invitation_rounds for inv in r.invitations
        ]
        assert (0, 1) in invited

    def test_invitation_declined_when_not_strictly_better(self):
        # Buyer 0 rejected at channel 0 in phase 1 (conflict with buyer 1);
        # buyer 1 then leaves; but meanwhile buyer 0 matched channel 1 at
        # equal value, so she declines the invitation.
        market = market_of(
            [[4.0, 4.0], [9.0, 8.9]],
            [[(0, 1)], []],
        )
        start = Matching(2, 2)
        start.match(1, 0)
        start.match(0, 1)
        result = transfer_and_invitation(market, start)
        # buyer 1 stays on 0 (her best); buyer 0 applies to 0? No: 4 == 4
        # not strictly better -> no application, no invitation at all.
        assert result.matching.channel_of(0) == 1
        assert result.num_invitation_rounds == 0

    def test_welfare_snapshot_between_phases(self):
        market, start = self.build_invitation_case()
        result = transfer_and_invitation(market, start)
        w1 = result.matching_after_phase1.social_welfare(market.utilities)
        w2 = result.matching.social_welfare(market.utilities)
        assert w1 == pytest.approx(7.0)  # only buyer 0 on channel 1
        assert w2 == pytest.approx(10.0)  # + buyer 1 invited onto channel 0


class TestStageTwoInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_decreases_any_buyer(self, market_factory, seed):
        """Transfers/invitations are voluntary: nobody ends up worse."""
        market = market_factory(num_buyers=20, num_channels=5, seed=seed)
        stage_one = deferred_acceptance(market)
        result = transfer_and_invitation(market, stage_one.matching)
        for j in range(market.num_buyers):
            before = stage_one.matching.buyer_utility(j, market.utilities)
            after = result.matching.buyer_utility(j, market.utilities)
            assert after >= before - 1e-12

    @pytest.mark.parametrize("seed", range(6))
    def test_welfare_monotone_across_phases(self, market_factory, seed):
        market = market_factory(num_buyers=20, num_channels=5, seed=seed)
        stage_one = deferred_acceptance(market)
        result = transfer_and_invitation(market, stage_one.matching)
        w0 = stage_one.matching.social_welfare(market.utilities)
        w1 = result.matching_after_phase1.social_welfare(market.utilities)
        w2 = result.matching.social_welfare(market.utilities)
        assert w0 <= w1 + 1e-12 <= w2 + 2e-12

    @pytest.mark.parametrize("seed", range(6))
    def test_output_interference_free_and_consistent(self, market_factory, seed):
        market = market_factory(num_buyers=20, num_channels=5, seed=seed)
        stage_one = deferred_acceptance(market)
        result = transfer_and_invitation(market, stage_one.matching)
        assert result.matching.is_interference_free(market.interference)
        result.matching.assert_consistent()
