"""End-to-end differential: the Stage-I kernel cache vs the reference.

:mod:`repro.core.deferred_acceptance` keeps an incremental per-seller
MWIS cache on the fast path.  These tests prove the whole two-stage
pipeline -- matching, per-stage welfare and round counts -- is
byte-identical to the set-based reference (``SPECTRUM_FAST_KERNELS=0``)
across seeds, market shapes and MWIS algorithm choices, and that the
environment toggle actually switches paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.two_stage import run_two_stage
from repro.interference.bitset import FAST_KERNELS_ENV
from repro.interference.mwis import MwisAlgorithm
from repro.workloads.scenarios import paper_simulation_market


def _fingerprint(market, result):
    """Everything observable about a run, as one comparable value."""
    return {
        "matching": {
            channel: tuple(sorted(result.matching.coalition(channel)))
            for channel in range(market.num_channels)
        },
        "welfare": (
            result.welfare_stage1,
            result.welfare_phase1,
            result.welfare_phase2,
        ),
        "rounds": (
            result.rounds_stage1,
            result.rounds_phase1,
            result.rounds_phase2,
        ),
    }


@pytest.mark.parametrize(
    "algorithm", [MwisAlgorithm.GWMIN, MwisAlgorithm.GWMIN2, MwisAlgorithm.GWMAX]
)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_run_two_stage_identical_across_kernel_paths(monkeypatch, algorithm, seed):
    def build():
        return paper_simulation_market(
            40, 5, np.random.default_rng([seed, 40]), mwis_algorithm=algorithm
        )

    monkeypatch.delenv(FAST_KERNELS_ENV, raising=False)
    market = build()
    fast = _fingerprint(market, run_two_stage(market, record_trace=False))
    monkeypatch.setenv(FAST_KERNELS_ENV, "0")
    market = build()
    reference = _fingerprint(market, run_two_stage(market, record_trace=False))
    assert fast == reference


@pytest.mark.parametrize("monotone_guard", [True, False])
def test_identical_with_and_without_monotone_guard(monkeypatch, monotone_guard):
    def run():
        market = paper_simulation_market(30, 4, np.random.default_rng([9, 30]))
        return _fingerprint(
            market, run_two_stage(market, record_trace=False, monotone_guard=monotone_guard)
        )

    monkeypatch.delenv(FAST_KERNELS_ENV, raising=False)
    fast = run()
    monkeypatch.setenv(FAST_KERNELS_ENV, "0")
    assert fast == run()


def test_trace_records_identical(monkeypatch):
    """Round-by-round traces (not just the end state) must coincide."""
    def run():
        market = paper_simulation_market(25, 4, np.random.default_rng([3, 25]))
        result = run_two_stage(market, record_trace=True)
        return result.stage_one.rounds

    monkeypatch.delenv(FAST_KERNELS_ENV, raising=False)
    fast_rounds = run()
    monkeypatch.setenv(FAST_KERNELS_ENV, "0")
    reference_rounds = run()
    assert fast_rounds == reference_rounds
