"""Differential suite: batched SoA Stage I vs the scalar references.

The struct-of-arrays batched path (:mod:`repro.core.soa`) promises
*byte-identical* Stage-I outcomes -- the same coalitions, the same
welfare bits, the same round/proposal counts -- as both the scalar
bitset-kernel path (``SPECTRUM_BATCH_STAGE1=0``) and the set-based
reference path (``SPECTRUM_FAST_KERNELS=0``).  These tests enforce that
promise across seeds, MWIS algorithms, both monotone-guard settings and
both :class:`~repro.core.soa.SellerPoolCache` layouts, with Hypothesis
exploring random geometric markets when it is installed (mirroring
``tests/interference/test_bitset_differential.py`` one layer down).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.core.soa as soa
from repro.core.deferred_acceptance import deferred_acceptance
from repro.core.soa import BATCH_STAGE1_ENV, batch_stage1_enabled
from repro.interference.bitset import FAST_KERNELS_ENV
from repro.interference.mwis import MwisAlgorithm
from repro.workloads.scenarios import paper_simulation_market

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False

MODES = ("batched", "scalar", "reference")

ALGORITHMS = (
    MwisAlgorithm.GWMIN,
    MwisAlgorithm.GWMIN2,
    MwisAlgorithm.GWMAX,
)


def _set_mode(mode: str) -> None:
    """Point the env toggles at one of the three Stage-I paths."""
    os.environ.pop(FAST_KERNELS_ENV, None)
    os.environ.pop(BATCH_STAGE1_ENV, None)
    if mode == "scalar":
        os.environ[BATCH_STAGE1_ENV] = "0"
    elif mode == "reference":
        os.environ[FAST_KERNELS_ENV] = "0"


def _fingerprint(market, result):
    """Everything Stage I produces, with floats as exact bit patterns."""
    coalitions = tuple(
        tuple(result.matching.coalition(channel))
        for channel in range(market.num_channels)
    )
    welfare = float(result.matching.social_welfare(market.utilities))
    return (
        coalitions,
        welfare.hex(),
        result.num_rounds,
        result.total_proposals,
        len(result.rounds),
    )


def _all_modes(market, monotone_guard: bool):
    """Fingerprint the same market through every Stage-I path."""
    prints = {}
    for mode in MODES:
        _set_mode(mode)
        try:
            result = deferred_acceptance(
                market, record_trace=True, monotone_guard=monotone_guard
            )
        finally:
            _set_mode("batched")  # restore the default env
        prints[mode] = _fingerprint(market, result)
    return prints


def _assert_identical(prints, context: str) -> None:
    assert prints["batched"] == prints["scalar"], (
        f"{context}: batched SoA diverged from the scalar kernels"
    )
    assert prints["batched"] == prints["reference"], (
        f"{context}: batched SoA diverged from the set-based reference"
    )


class TestBatchedDifferential:
    """Seeded sweep: seeds x algorithms x guard, zero tolerance."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.value)
    @pytest.mark.parametrize("monotone_guard", [True, False])
    def test_identical_stage1_across_paths(self, algorithm, monotone_guard):
        for seed, num_buyers, num_channels in (
            (700, 60, 6),
            (11, 90, 5),
            (42, 120, 8),
        ):
            market = paper_simulation_market(
                num_buyers,
                num_channels,
                np.random.default_rng([seed, num_buyers]),
                mwis_algorithm=algorithm,
            )
            prints = _all_modes(market, monotone_guard)
            _assert_identical(
                prints,
                f"seed={seed} N={num_buyers} M={num_channels} "
                f"alg={algorithm.value} guard={monotone_guard}",
            )

    def test_batching_defaults_on(self, monkeypatch):
        monkeypatch.delenv(BATCH_STAGE1_ENV, raising=False)
        assert batch_stage1_enabled()
        monkeypatch.setenv(BATCH_STAGE1_ENV, "0")
        assert not batch_stage1_enabled()


class TestSparsePoolLayout:
    """Force the slot-recycling sparse ``SellerPoolCache`` on small N.

    The scalability tier (N > ``DENSE_POOL_THRESHOLD``) is the only
    organic user of the sparse layout, far too big for the tier-1 suite;
    dropping the threshold to zero runs the identical differential sweep
    through the sparse update/solve code instead.
    """

    @pytest.mark.parametrize(
        "algorithm",
        (MwisAlgorithm.GWMIN, MwisAlgorithm.GWMIN2),
        ids=lambda a: a.value,
    )
    @pytest.mark.parametrize("monotone_guard", [True, False])
    def test_sparse_layout_identical(
        self, monkeypatch, algorithm, monotone_guard
    ):
        monkeypatch.setattr(soa, "DENSE_POOL_THRESHOLD", 0)
        for seed in (700, 11, 42):
            market = paper_simulation_market(
                80, 6, np.random.default_rng([seed, 80]),
                mwis_algorithm=algorithm,
            )
            cache = soa.SellerPoolCache(
                market.graph(0), market.channel_prices(0)
            )
            assert not cache.dense
            prints = _all_modes(market, monotone_guard)
            _assert_identical(
                prints,
                f"sparse seed={seed} alg={algorithm.value} "
                f"guard={monotone_guard}",
            )


if HAVE_HYPOTHESIS:

    class TestDifferentialHypothesis:
        """Random geometric markets, exploring sizes/seeds the sweep
        above does not pin down.  Env toggled manually: hypothesis
        forbids function-scoped fixtures under ``@given``."""

        @settings(max_examples=40, deadline=None)
        @given(
            num_buyers=st.integers(min_value=1, max_value=32),
            num_channels=st.integers(min_value=1, max_value=4),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            algorithm=st.sampled_from(
                [MwisAlgorithm.GWMIN, MwisAlgorithm.GWMIN2]
            ),
            monotone_guard=st.booleans(),
        )
        def test_identical_on_random_markets(
            self, num_buyers, num_channels, seed, algorithm, monotone_guard
        ):
            market = paper_simulation_market(
                num_buyers,
                num_channels,
                np.random.default_rng([seed, num_buyers]),
                mwis_algorithm=algorithm,
            )
            prints = _all_modes(market, monotone_guard)
            _assert_identical(
                prints,
                f"hypothesis N={num_buyers} M={num_channels} seed={seed} "
                f"alg={algorithm.value} guard={monotone_guard}",
            )
