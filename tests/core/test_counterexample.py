"""Section III-D negative results, demonstrated on the frozen instance.

The paper proves (by counterexample, Figs. 4-5) that the two-stage
algorithm guarantees Nash stability but NOT pairwise stability and NOT
buyer optimality.  ``counterexample_market()`` is a compact instance with
the same structure; these tests pin down every claim.
"""

from __future__ import annotations

import pytest

from repro.core.matching import Matching
from repro.core.stability import (
    is_individually_rational,
    is_nash_stable,
    is_pairwise_stable,
    pairwise_blocking_pairs,
    pareto_dominates_for_buyers,
)
from repro.core.two_stage import run_two_stage
from repro.optimal.bruteforce import optimal_matching_bruteforce
from repro.workloads.scenarios import counterexample_market

# Buyer ids in the scenario: z=0, w=1, x=2, y=3, j=4; channels A=0, B=1, C=2.
Z, W, X, Y, J = range(5)
A, B, C = range(3)


@pytest.fixture(scope="module")
def market():
    return counterexample_market()


@pytest.fixture(scope="module")
def result(market):
    return run_two_stage(market)


class TestAlgorithmOutcome:
    def test_final_matching(self, result):
        matching = result.matching
        assert matching.coalition(A) == frozenset({Z, Y})
        assert matching.coalition(B) == frozenset({W, X})
        assert matching.coalition(C) == frozenset({J})

    def test_final_welfare(self, result):
        assert result.social_welfare == pytest.approx(23.0)

    def test_y_was_evicted_from_b(self, result):
        evictions = [
            e for record in result.stage_one.rounds for e in record.evictions
        ]
        assert (Y, B) in evictions

    def test_j_rejected_in_both_stages(self, result):
        stage1_rejections = [
            r for record in result.stage_one.rounds for r in record.rejections
        ]
        assert (J, B) in stage1_rejections
        stage2_rejections = [
            r
            for record in result.stage_two.transfer_rounds
            for r in record.rejected
        ]
        assert (J, B) in stage2_rejections


class TestPositiveProperties:
    def test_individually_rational(self, market, result):
        assert is_individually_rational(market, result.matching)

    def test_nash_stable(self, market, result):
        assert is_nash_stable(market, result.matching)


class TestNegativeProperties:
    def test_not_pairwise_stable(self, market, result):
        assert not is_pairwise_stable(market, result.matching)

    def test_the_blocking_pair_is_seller_b_buyer_j(self, market, result):
        pairs = list(pairwise_blocking_pairs(market, result.matching))
        assert len(pairs) == 1
        pair = pairs[0]
        assert pair.channel == B
        assert pair.buyer == J
        assert pair.evicted == (X,)
        assert pair.seller_gain == pytest.approx(2.0)  # 5 - 3
        assert pair.buyer_current == pytest.approx(1.0)
        assert pair.buyer_new == pytest.approx(5.0)

    def test_not_buyer_optimal(self, market, result):
        """Another Nash-stable matching Pareto-dominates the output."""
        alternative = Matching(3, 5)
        alternative.match(Z, A)
        alternative.match(Y, A)
        alternative.match(J, B)
        alternative.match(W, B)
        alternative.match(X, C)
        assert alternative.is_interference_free(market.interference)
        assert is_nash_stable(market, alternative)
        assert pareto_dominates_for_buyers(market, alternative, result.matching)

    def test_alternative_is_also_the_optimum(self, market, result):
        optimal = optimal_matching_bruteforce(market)
        assert optimal.social_welfare(market.utilities) == pytest.approx(27.0)
        assert result.social_welfare < 27.0
