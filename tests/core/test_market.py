"""Unit tests for the market model and dummy expansion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.market import PhysicalBuyer, PhysicalSeller, SpectrumMarket
from repro.errors import MarketConfigurationError
from repro.interference.generators import interference_map_from_edge_lists
from repro.interference.graph import InterferenceGraph, InterferenceMap
from repro.interference.mwis import MwisAlgorithm


def simple_map(num_buyers: int, num_channels: int) -> InterferenceMap:
    return InterferenceMap([InterferenceGraph(num_buyers) for _ in range(num_channels)])


class TestPhysicalParticipants:
    def test_seller_needs_a_channel(self):
        with pytest.raises(MarketConfigurationError):
            PhysicalSeller(name="s", num_channels=0)

    def test_buyer_needs_a_request(self):
        with pytest.raises(MarketConfigurationError):
            PhysicalBuyer(name="b", num_requested=0, utilities=(1.0,))

    def test_buyer_rejects_negative_utilities(self):
        with pytest.raises(MarketConfigurationError):
            PhysicalBuyer(name="b", num_requested=1, utilities=(1.0, -0.5))

    def test_buyer_utilities_coerced_to_floats(self):
        buyer = PhysicalBuyer(name="b", num_requested=1, utilities=(1, 2))
        assert buyer.utilities == (1.0, 2.0)


class TestMarketConstruction:
    def test_basic_accessors(self):
        utilities = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        market = SpectrumMarket(utilities, simple_map(3, 2))
        assert market.num_buyers == 3
        assert market.num_channels == 2
        assert market.price(1, 0) == 2.0  # channel 1, buyer 0
        assert list(market.channel_prices(0)) == [1.0, 3.0, 5.0]
        assert list(market.buyer_vector(2)) == [5.0, 6.0]

    def test_utilities_are_read_only(self):
        market = SpectrumMarket(np.ones((2, 2)), simple_map(2, 2))
        with pytest.raises(ValueError):
            market.utilities[0, 0] = 9.0

    def test_rejects_wrong_ndim(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket(np.ones(4), simple_map(4, 1))

    def test_rejects_negative_utilities(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket(np.array([[-1.0]]), simple_map(1, 1))

    def test_rejects_nonfinite_utilities(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket(np.array([[np.inf]]), simple_map(1, 1))

    def test_rejects_channel_count_mismatch(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket(np.ones((3, 2)), simple_map(3, 5))

    def test_rejects_buyer_count_mismatch(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket(np.ones((3, 2)), simple_map(7, 2))

    def test_rejects_empty_market(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket(np.ones((0, 2)), simple_map(0, 2))

    def test_default_labels(self):
        market = SpectrumMarket(np.ones((2, 3)), simple_map(2, 3))
        assert market.buyer_names == ("b0", "b1")
        assert market.channel_names == ("ch0", "ch1", "ch2")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket(
                np.ones((2, 2)), simple_map(2, 2), buyer_names=["x", "x"]
            )

    def test_wrong_label_count_rejected(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket(
                np.ones((2, 2)), simple_map(2, 2), channel_names=["only-one"]
            )

    def test_with_mwis_algorithm(self):
        market = SpectrumMarket(np.ones((2, 2)), simple_map(2, 2))
        other = market.with_mwis_algorithm(MwisAlgorithm.EXACT)
        assert other.mwis_algorithm is MwisAlgorithm.EXACT
        assert market.mwis_algorithm is MwisAlgorithm.GWMIN
        assert np.array_equal(other.utilities, market.utilities)


class TestDummyExpansion:
    def make_market(self):
        sellers = [
            PhysicalSeller(name="s0", num_channels=2),
            PhysicalSeller(name="s1", num_channels=1),
        ]
        buyers = [
            PhysicalBuyer(name="b0", num_requested=2, utilities=(0.5, 0.6, 0.7)),
            PhysicalBuyer(name="b1", num_requested=1, utilities=(0.1, 0.2, 0.3)),
        ]
        imap = simple_map(3, 3)
        return SpectrumMarket.from_physical(sellers, buyers, imap)

    def test_counts(self):
        market = self.make_market()
        assert market.num_channels == 3  # 2 + 1
        assert market.num_buyers == 3  # 2 + 1

    def test_virtual_names_and_owners(self):
        market = self.make_market()
        assert market.channel_names == ("s0.0", "s0.1", "s1")
        assert market.buyer_names == ("b0.0", "b0.1", "b1")
        assert market.channel_owner == (0, 0, 1)
        assert market.buyer_owner == (0, 0, 1)

    def test_clones_share_the_utility_vector(self):
        market = self.make_market()
        assert list(market.buyer_vector(0)) == [0.5, 0.6, 0.7]
        assert list(market.buyer_vector(1)) == [0.5, 0.6, 0.7]
        assert list(market.buyer_vector(2)) == [0.1, 0.2, 0.3]

    def test_clones_interfere_everywhere(self):
        market = self.make_market()
        for channel in range(3):
            assert market.interference.interferes(channel, 0, 1)
            assert not market.interference.interferes(channel, 0, 2)
        market.validate()  # must not raise

    def test_validate_detects_missing_clone_clique(self):
        # Build an inconsistent market by hand: same owner, no clique.
        market = SpectrumMarket(
            np.ones((2, 1)),
            simple_map(2, 1),
            buyer_owner=[0, 0],
        )
        with pytest.raises(MarketConfigurationError):
            market.validate()

    def test_wrong_utility_vector_length_rejected(self):
        sellers = [PhysicalSeller(name="s", num_channels=2)]
        buyers = [PhysicalBuyer(name="b", num_requested=1, utilities=(0.4,))]
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket.from_physical(sellers, buyers, simple_map(1, 2))

    def test_empty_participants_rejected(self):
        with pytest.raises(MarketConfigurationError):
            SpectrumMarket.from_physical([], [], simple_map(1, 1))
