"""Tests for Stage I: adapted deferred acceptance (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deferred_acceptance import (
    deferred_acceptance,
    seller_select_coalition,
)
from repro.core.market import SpectrumMarket
from repro.interference.generators import (
    complete_graph,
    empty_graph,
    interference_map_from_edge_lists,
)
from repro.interference.graph import InterferenceMap
from repro.interference.mwis import MwisAlgorithm


def market_of(utilities, per_channel_edges, **kwargs):
    utilities = np.asarray(utilities, dtype=float)
    imap = interference_map_from_edge_lists(utilities.shape[0], per_channel_edges)
    return SpectrumMarket(utilities, imap, **kwargs)


class TestSellerSelectCoalition:
    def test_selects_mwis_from_pool(self):
        market = market_of([[5.0], [4.0], [3.0]], [[(0, 1)]])
        selected = seller_select_coalition(market, 0, pool=[0, 1, 2])
        assert selected == [0, 2]

    def test_monotone_guard_never_worse_than_incumbent(self):
        # Construct a case where plain GWMIN on the pool is worse than the
        # incumbent: a triangle-free trap. Pool: incumbent {0, 1} (weights
        # 4, 4); newcomer 2 (weight 5) interferes with both.
        market = market_of(
            [[4.0], [4.0], [5.0]],
            [[(0, 2), (1, 2)]],
        )
        selected = seller_select_coalition(
            market, 0, pool=[0, 1, 2], incumbent=[0, 1], monotone_guard=True
        )
        # Keeping {0,1} (8) beats switching to {2} (5).
        assert selected == [0, 1]

    def test_guard_accepts_strict_improvement(self):
        market = market_of([[4.0], [9.0]], [[(0, 1)]])
        selected = seller_select_coalition(
            market, 0, pool=[0, 1], incumbent=[0], monotone_guard=True
        )
        assert selected == [1]

    def test_guard_extends_incumbent_with_compatible_newcomers(self):
        market = market_of([[4.0], [3.0], [2.0]], [[(1, 2)]])
        selected = seller_select_coalition(
            market, 0, pool=[0, 1, 2], incumbent=[0], monotone_guard=True
        )
        assert selected == [0, 1]  # 0 kept, 1 added (beats 2)


class TestStageOneSmallMarkets:
    def test_single_buyer_single_channel(self):
        market = market_of([[1.0]], [[]])
        result = deferred_acceptance(market)
        assert result.matching.channel_of(0) == 0
        assert result.num_rounds == 1
        assert result.total_proposals == 1

    def test_zero_utility_buyer_stays_unmatched(self):
        market = market_of([[0.0]], [[]])
        result = deferred_acceptance(market)
        assert result.matching.channel_of(0) is None
        assert result.num_rounds == 0

    def test_no_interference_everyone_gets_favorite(self):
        utilities = [[0.9, 0.1], [0.2, 0.8], [0.6, 0.5]]
        market = market_of(utilities, [[], []])
        result = deferred_acceptance(market)
        assert result.matching.channel_of(0) == 0
        assert result.matching.channel_of(1) == 1
        assert result.matching.channel_of(2) == 0
        assert result.num_rounds == 1

    def test_complete_interference_reduces_to_one_to_one(self):
        """Proof of Proposition 1: complete graphs = classic DA."""
        utilities = [[5.0, 1.0], [4.0, 3.0], [2.0, 2.5]]
        imap = InterferenceMap([complete_graph(3), complete_graph(3)])
        market = SpectrumMarket(np.asarray(utilities), imap)
        result = deferred_acceptance(market)
        # Each channel holds at most one buyer.
        for channel in range(2):
            assert len(result.matching.coalition(channel)) <= 1
        # Classic DA outcome: buyer 0 -> ch0 (5 beats 4), buyer 1 -> ch1,
        # buyer 2 unmatched (rejected everywhere).
        assert result.matching.channel_of(0) == 0
        assert result.matching.channel_of(1) == 1
        assert result.matching.channel_of(2) is None

    def test_eviction_and_recovery(self):
        # Round 1: buyer 0 takes channel 0; buyer 1 loses channel 1 to
        # buyer 2.  Round 2: buyer 1 falls back to channel 0 and EVICTS the
        # waitlisted buyer 0 (6 > 5), who recovers on channel 1.
        utilities = [[5.0, 2.0], [6.0, 7.0], [0.0, 9.0]]
        market = market_of(utilities, [[(0, 1)], [(1, 2)]])
        result = deferred_acceptance(market)
        assert result.matching.channel_of(1) == 0
        assert result.matching.channel_of(2) == 1
        assert result.matching.channel_of(0) == 1
        evictions = [e for record in result.rounds for e in record.evictions]
        assert (0, 0) in evictions


class TestStageOneInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_output_is_interference_free(self, market_factory, seed):
        market = market_factory(num_buyers=20, num_channels=5, seed=seed)
        result = deferred_acceptance(market)
        assert result.matching.is_interference_free(market.interference)
        result.matching.assert_consistent()

    @pytest.mark.parametrize("seed", range(5))
    def test_proposal_budget_respected(self, market_factory, seed):
        """Proposition 1: at most N*M proposals in total."""
        market = market_factory(num_buyers=15, num_channels=4, seed=seed)
        result = deferred_acceptance(market)
        assert result.total_proposals <= market.num_buyers * market.num_channels

    def test_deterministic_across_runs(self, market_factory):
        market = market_factory(num_buyers=25, num_channels=6, seed=3)
        first = deferred_acceptance(market)
        second = deferred_acceptance(market)
        assert first.matching == second.matching
        assert first.num_rounds == second.num_rounds

    def test_trace_disabled(self, market_factory):
        market = market_factory(num_buyers=10, num_channels=3, seed=1)
        result = deferred_acceptance(market, record_trace=False)
        assert result.rounds == ()
        assert result.num_rounds > 0

    def test_exact_mwis_gives_no_worse_stage1_welfare_on_fixture(self):
        utilities = [[4.0, 0.0], [4.0, 0.0], [5.0, 0.0]]
        edges = [[(0, 2), (1, 2)], []]
        greedy_market = market_of(utilities, edges)
        exact_market = market_of(
            utilities, edges, mwis_algorithm=MwisAlgorithm.EXACT
        )
        greedy = deferred_acceptance(greedy_market)
        exact = deferred_acceptance(exact_market)
        assert exact.matching.social_welfare(
            exact_market.utilities
        ) >= greedy.matching.social_welfare(greedy_market.utilities)

    def test_matched_buyers_hold_positive_utility(self, market_factory):
        market = market_factory(num_buyers=30, num_channels=5, seed=9)
        result = deferred_acceptance(market)
        for buyer, channel in result.matching.matched_buyers():
            assert market.price(channel, buyer) > 0.0
