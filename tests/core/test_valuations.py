"""Tests for combinatorial valuations (footnote-1 extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.market import PhysicalBuyer, PhysicalSeller, SpectrumMarket
from repro.core.two_stage import run_two_stage
from repro.core.valuations import (
    AdditiveValuation,
    ComplementsValuation,
    SubstitutesValuation,
    combinatorial_optimal_welfare,
    physical_bundles,
    physical_welfare,
)
from repro.errors import MarketConfigurationError
from repro.interference.generators import interference_map_from_edge_lists

VALUES = (3.0, 2.0, 1.0)


class TestAdditive:
    def test_bundle_value_is_sum(self):
        valuation = AdditiveValuation(VALUES)
        assert valuation.value([]) == 0.0
        assert valuation.value([0]) == 3.0
        assert valuation.value([0, 2]) == 4.0
        assert valuation.value([0, 1, 2]) == 6.0

    def test_duplicates_counted_once(self):
        assert AdditiveValuation(VALUES).value([1, 1]) == 2.0

    def test_marginal(self):
        valuation = AdditiveValuation(VALUES)
        assert valuation.marginal(1, [0]) == 2.0
        assert valuation.marginal(0, [0]) == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(MarketConfigurationError):
            AdditiveValuation((1.0, -1.0))


class TestSubstitutes:
    def test_discount_by_rank(self):
        valuation = SubstitutesValuation(VALUES, factor=0.5)
        # sorted desc: 3, 2, 1 -> 3 + 2*0.5 + 1*0.25 = 4.25
        assert valuation.value([0, 1, 2]) == pytest.approx(4.25)

    def test_factor_one_is_additive(self):
        sub = SubstitutesValuation(VALUES, factor=1.0)
        add = AdditiveValuation(VALUES)
        assert sub.value([0, 2]) == add.value([0, 2])

    def test_factor_zero_keeps_only_best(self):
        valuation = SubstitutesValuation(VALUES, factor=0.0)
        assert valuation.value([0, 1, 2]) == 3.0

    def test_subadditive(self):
        valuation = SubstitutesValuation(VALUES, factor=0.5)
        assert valuation.value([0, 1]) <= (
            valuation.value([0]) + valuation.value([1])
        )

    def test_factor_validation(self):
        with pytest.raises(MarketConfigurationError):
            SubstitutesValuation(VALUES, factor=1.5)


class TestComplements:
    def test_synergy_multiplier(self):
        valuation = ComplementsValuation(VALUES, synergy=1.5)
        # (3 + 2) * 1.5^(2-1) = 7.5
        assert valuation.value([0, 1]) == pytest.approx(7.5)

    def test_synergy_one_is_additive(self):
        comp = ComplementsValuation(VALUES, synergy=1.0)
        assert comp.value([0, 1, 2]) == 6.0

    def test_superadditive(self):
        valuation = ComplementsValuation(VALUES, synergy=1.3)
        assert valuation.value([0, 1]) >= (
            valuation.value([0]) + valuation.value([1])
        ) - 1e-12

    def test_empty_bundle(self):
        assert ComplementsValuation(VALUES).value([]) == 0.0

    def test_synergy_validation(self):
        with pytest.raises(MarketConfigurationError):
            ComplementsValuation(VALUES, synergy=0.8)


@st.composite
def bundles(draw):
    return draw(st.sets(st.integers(min_value=0, max_value=2)))


@given(bundles(), bundles())
@settings(max_examples=100, deadline=None)
def test_monotonicity_of_all_valuations(a, b):
    """Bigger bundles are never worth less (free disposal)."""
    union = a | b
    for valuation in (
        AdditiveValuation(VALUES),
        SubstitutesValuation(VALUES, factor=0.6),
        ComplementsValuation(VALUES, synergy=1.4),
    ):
        assert valuation.value(union) >= valuation.value(a) - 1e-12


class TestPhysicalEvaluation:
    def build_market(self):
        sellers = [PhysicalSeller(name="s", num_channels=3)]
        buyers = [
            PhysicalBuyer(name="b0", num_requested=2, utilities=VALUES),
            PhysicalBuyer(name="b1", num_requested=1, utilities=(1.0, 2.0, 3.0)),
        ]
        imap = interference_map_from_edge_lists(3, [[], [], []])
        return SpectrumMarket.from_physical(sellers, buyers, imap)

    def test_bundles_collect_clone_wins(self):
        market = self.build_market()
        result = run_two_stage(market, record_trace=False)
        bundles_by_owner = physical_bundles(market, result.matching)
        assert set(bundles_by_owner) == {0, 1}
        # b0's two clones hold two distinct channels.
        assert len(bundles_by_owner[0]) == 2

    def test_additive_physical_welfare_matches_virtual(self):
        market = self.build_market()
        result = run_two_stage(market, record_trace=False)
        valuations = [
            AdditiveValuation(VALUES),
            AdditiveValuation((1.0, 2.0, 3.0)),
        ]
        assert physical_welfare(market, result.matching, valuations) == (
            pytest.approx(result.social_welfare)
        )

    def test_missing_valuation_rejected(self):
        market = self.build_market()
        result = run_two_stage(market, record_trace=False)
        with pytest.raises(MarketConfigurationError):
            physical_welfare(market, result.matching, [AdditiveValuation(VALUES)])

    def test_combinatorial_optimum_bounds_proxy(self):
        market = self.build_market()
        result = run_two_stage(market, record_trace=False)
        valuations = [
            ComplementsValuation(VALUES, synergy=1.5),
            AdditiveValuation((1.0, 2.0, 3.0)),
        ]
        truth = physical_welfare(market, result.matching, valuations)
        best, best_matching = combinatorial_optimal_welfare(market, valuations)
        assert best >= truth - 1e-9
        assert best_matching.is_interference_free(market.interference)

    def test_additive_truth_makes_proxy_optimal(self):
        market = self.build_market()
        result = run_two_stage(market, record_trace=False)
        valuations = [
            AdditiveValuation(VALUES),
            AdditiveValuation((1.0, 2.0, 3.0)),
        ]
        best, _ = combinatorial_optimal_welfare(market, valuations)
        # No interference here: additive truth -> the proxy IS optimal.
        assert physical_welfare(market, result.matching, valuations) == (
            pytest.approx(best)
        )
