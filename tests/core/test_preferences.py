"""Tests for coalition utilities and preference relations (eqs. 5-6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coalition import (
    Coalition,
    buyer_utility_in_coalition,
    seller_revenue,
)
from repro.core.market import SpectrumMarket
from repro.core.preferences import (
    buyer_coalition_value,
    buyer_preference_order,
    buyer_prefers,
    preferred_channels_above,
    seller_coalition_value,
    seller_prefers,
)
from repro.interference.generators import interference_map_from_edge_lists


@pytest.fixture
def market():
    """3 buyers, 2 channels; buyers 0 and 1 interfere on channel 0 only."""
    utilities = np.array(
        [
            [4.0, 2.0],
            [3.0, 5.0],
            [1.0, 0.0],
        ]
    )
    imap = interference_map_from_edge_lists(3, [[(0, 1)], []])
    return SpectrumMarket(utilities, imap)


class TestCoalition:
    def test_constructors(self):
        c = Coalition.of(1, [2, 0])
        assert c.channel == 1
        assert c.buyers == frozenset({0, 2})
        assert len(c) == 2

    def test_with_and_without_buyer(self):
        c = Coalition.of(0, [1])
        assert c.with_buyer(2).buyers == frozenset({1, 2})
        assert c.without_buyer(1).buyers == frozenset()

    def test_interference_free(self, market):
        assert Coalition.of(0, [0, 2]).is_interference_free(market)
        assert not Coalition.of(0, [0, 1]).is_interference_free(market)
        assert Coalition.of(1, [0, 1]).is_interference_free(market)


class TestBuyerUtility:
    def test_full_utility_without_neighbours(self, market):
        c = Coalition.of(0, [0, 2])  # 0 and 2 don't interfere
        assert buyer_utility_in_coalition(market, 0, c) == 4.0

    def test_zero_with_interfering_neighbour(self, market):
        c = Coalition.of(0, [0, 1])
        assert buyer_utility_in_coalition(market, 0, c) == 0.0
        assert buyer_utility_in_coalition(market, 1, c) == 0.0

    def test_nonmember_gets_zero(self, market):
        c = Coalition.of(0, [1])
        assert buyer_utility_in_coalition(market, 0, c) == 0.0

    def test_same_pair_on_clean_channel(self, market):
        c = Coalition.of(1, [0, 1])  # no conflict on channel 1
        assert buyer_utility_in_coalition(market, 0, c) == 2.0
        assert buyer_utility_in_coalition(market, 1, c) == 5.0


class TestSellerValue:
    def test_revenue_sums_prices(self, market):
        c = Coalition.of(0, [0, 2])
        assert seller_revenue(market, c) == 5.0

    def test_value_zero_when_interfering(self, market):
        c = Coalition.of(0, [0, 1])
        assert seller_revenue(market, c) == 7.0  # raw sum
        assert seller_coalition_value(market, c) == 0.0  # realised value

    def test_empty_coalition_value(self, market):
        assert seller_coalition_value(market, Coalition.of(0, [])) == 0.0


class TestPreferenceRelations:
    def test_buyer_prefers_higher_utility_channel(self, market):
        a = Coalition.of(0, [0])
        b = Coalition.of(1, [0])
        assert buyer_prefers(market, 0, a, b)  # 4 > 2
        assert not buyer_prefers(market, 0, b, a)

    def test_buyer_prefers_anything_over_interference(self, market):
        clean = Coalition.of(1, [0])  # value 2
        dirty = Coalition.of(0, [0, 1])  # value 0
        assert buyer_prefers(market, 0, clean, dirty)

    def test_buyer_indifferent_between_two_interfering(self, market):
        dirty = Coalition.of(0, [0, 1])
        assert not buyer_prefers(market, 0, dirty, dirty)

    def test_unmatched_vs_interfering_is_indifference(self, market):
        dirty = Coalition.of(0, [0, 1])
        assert not buyer_prefers(market, 0, None, dirty)
        assert not buyer_prefers(market, 0, dirty, None)

    def test_buyer_prefers_match_over_unmatched(self, market):
        assert buyer_prefers(market, 0, Coalition.of(1, [0]), None)

    def test_seller_prefers_higher_revenue(self, market):
        big = Coalition.of(0, [0, 2])  # 5, interference-free
        small = Coalition.of(0, [2])  # 1
        assert seller_prefers(market, big, small)
        assert not seller_prefers(market, small, big)

    def test_seller_prefers_clean_over_dirty(self, market):
        clean = Coalition.of(0, [2])  # value 1
        dirty = Coalition.of(0, [0, 1])  # raw 7 but value 0
        assert seller_prefers(market, clean, dirty)

    def test_seller_cross_channel_comparison_rejected(self, market):
        with pytest.raises(ValueError):
            seller_prefers(market, Coalition.of(0, [0]), Coalition.of(1, [0]))

    def test_buyer_coalition_value_none_is_zero(self, market):
        assert buyer_coalition_value(market, 0, None) == 0.0


class TestPreferenceOrders:
    def test_order_descending_by_utility(self, market):
        assert buyer_preference_order(market, 0) == [0, 1]
        assert buyer_preference_order(market, 1) == [1, 0]

    def test_zero_utility_channels_excluded(self, market):
        assert buyer_preference_order(market, 2) == [0]

    def test_ties_break_by_channel_index(self):
        utilities = np.array([[2.0, 2.0, 1.0]])
        imap = interference_map_from_edge_lists(1, [[], [], []])
        market = SpectrumMarket(utilities, imap)
        assert buyer_preference_order(market, 0) == [0, 1, 2]

    def test_preferred_channels_above(self, market):
        assert preferred_channels_above(market, 0, 2.0) == [0]
        assert preferred_channels_above(market, 0, 0.0) == [0, 1]
        assert preferred_channels_above(market, 0, 4.0) == []
