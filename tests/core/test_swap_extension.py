"""Tests for Stage III: coordinated swaps (Section III-D future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stability import (
    is_individually_rational,
    is_nash_stable,
    is_pairwise_stable,
)
from repro.core.swap_extension import coordinated_swaps
from repro.core.two_stage import run_two_stage
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.workloads.scenarios import counterexample_market, paper_simulation_market


class TestCounterexampleRepair:
    """The exact scenario the paper flags as unreachable without
    coordination: Stage III must reach it."""

    @pytest.fixture(scope="class")
    def outcome(self):
        market = counterexample_market()
        two_stage = run_two_stage(market, record_trace=False)
        return market, two_stage, coordinated_swaps(market, two_stage.matching)

    def test_welfare_lifted_to_optimum(self, outcome):
        market, two_stage, stage3 = outcome
        assert two_stage.social_welfare == pytest.approx(23.0)
        assert stage3.welfare_after == pytest.approx(27.0)
        optimum = optimal_matching_branch_and_bound(market)
        assert stage3.welfare_after == pytest.approx(
            optimum.social_welfare(market.utilities)
        )

    def test_exactly_one_swap(self, outcome):
        _, _, stage3 = outcome
        assert stage3.num_swaps == 1
        swap = stage3.swaps[0]
        assert swap.channel == 1  # seller B
        assert swap.buyer == 4  # buyer j
        assert swap.evicted == (2,)  # buyer x
        # x relocates to channel C (the paper's coordinated move).
        assert swap.relocations == ((2, 2),)

    def test_result_gains_pairwise_stability_here(self, outcome):
        market, _, stage3 = outcome
        assert is_nash_stable(market, stage3.matching)
        assert is_pairwise_stable(market, stage3.matching)

    def test_input_not_mutated(self):
        market = counterexample_market()
        two_stage = run_two_stage(market, record_trace=False)
        before = two_stage.matching.as_assignment()
        coordinated_swaps(market, two_stage.matching)
        assert two_stage.matching.as_assignment() == before


class TestSwapInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_welfare_never_decreases(self, seed):
        market = paper_simulation_market(
            14, 4, np.random.default_rng([950, seed])
        )
        result = run_two_stage(market, record_trace=False)
        stage3 = coordinated_swaps(market, result.matching)
        assert stage3.welfare_after >= stage3.welfare_before - 1e-9
        if stage3.num_swaps:
            assert stage3.welfare_after > stage3.welfare_before

    @pytest.mark.parametrize("seed", range(8))
    def test_output_feasible_rational_stable(self, seed):
        market = paper_simulation_market(
            14, 4, np.random.default_rng([951, seed])
        )
        result = run_two_stage(market, record_trace=False)
        stage3 = coordinated_swaps(market, result.matching)
        matching = stage3.matching
        assert matching.is_interference_free(market.interference)
        matching.assert_consistent()
        assert is_individually_rational(market, matching)
        assert is_nash_stable(market, matching)

    def test_swap_records_are_strictly_improving(self):
        market = counterexample_market()
        result = run_two_stage(market, record_trace=False)
        stage3 = coordinated_swaps(market, result.matching)
        for record in stage3.swaps:
            assert record.welfare_after > record.welfare_before

    def test_without_closing_stage_two(self):
        market = counterexample_market()
        result = run_two_stage(market, record_trace=False)
        stage3 = coordinated_swaps(
            market, result.matching, closing_stage_two=False
        )
        # The raw swap already reaches 27 here; closing pass is a no-op.
        assert stage3.welfare_after == pytest.approx(27.0)

    def test_idempotent_once_settled(self):
        market = counterexample_market()
        result = run_two_stage(market, record_trace=False)
        first = coordinated_swaps(market, result.matching)
        second = coordinated_swaps(market, first.matching)
        assert second.num_swaps == 0
        assert second.matching == first.matching
