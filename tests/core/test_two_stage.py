"""Integration tests for the complete two-stage pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stability import is_individually_rational, is_nash_stable
from repro.core.two_stage import run_two_stage
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.workloads.scenarios import paper_simulation_market, physical_market_example


class TestResultAccounting:
    def test_welfare_fields_match_matchings(self, market_factory):
        market = market_factory(num_buyers=15, num_channels=4, seed=2)
        result = run_two_stage(market)
        assert result.welfare_stage1 == pytest.approx(
            result.stage_one.matching.social_welfare(market.utilities)
        )
        assert result.welfare_phase1 == pytest.approx(
            result.stage_two.matching_after_phase1.social_welfare(market.utilities)
        )
        assert result.social_welfare == pytest.approx(
            result.matching.social_welfare(market.utilities)
        )

    def test_round_fields_match_stage_results(self, market_factory):
        market = market_factory(num_buyers=15, num_channels=4, seed=2)
        result = run_two_stage(market)
        assert result.rounds_stage1 == result.stage_one.num_rounds
        assert result.rounds_phase1 == result.stage_two.num_transfer_rounds
        assert result.rounds_phase2 == result.stage_two.num_invitation_rounds
        assert result.total_rounds == (
            result.rounds_stage1 + result.rounds_phase1 + result.rounds_phase2
        )

    def test_trace_flag_propagates(self, market_factory):
        market = market_factory(num_buyers=10, num_channels=3, seed=5)
        result = run_two_stage(market, record_trace=False)
        assert result.stage_one.rounds == ()
        assert result.stage_two.transfer_rounds == ()


class TestEndToEndInvariants:
    @pytest.mark.parametrize("seed", range(10))
    def test_output_stable_on_random_markets(self, seed):
        market = paper_simulation_market(
            18, 5, np.random.default_rng([77, seed])
        )
        result = run_two_stage(market, record_trace=False)
        assert result.matching.is_interference_free(market.interference)
        assert is_individually_rational(market, result.matching)
        assert is_nash_stable(market, result.matching)

    @pytest.mark.parametrize("seed", range(5))
    def test_welfare_within_optimal(self, seed):
        market = paper_simulation_market(9, 4, np.random.default_rng([78, seed]))
        result = run_two_stage(market, record_trace=False)
        optimum = optimal_matching_branch_and_bound(market)
        best = optimum.social_welfare(market.utilities)
        assert result.social_welfare <= best + 1e-9

    def test_headline_claim_90_percent(self):
        """Paper Section V-B: proposed >= 90% of optimal (on average)."""
        ratios = []
        for seed in range(40):
            market = paper_simulation_market(
                8, 4, np.random.default_rng([79, seed])
            )
            result = run_two_stage(market, record_trace=False)
            best = optimal_matching_branch_and_bound(market).social_welfare(
                market.utilities
            )
            ratios.append(result.social_welfare / best if best > 0 else 1.0)
        assert float(np.mean(ratios)) > 0.90

    def test_physical_market_end_to_end(self, rng):
        """Dummy-expanded multi-demand market runs clean end to end."""
        market = physical_market_example(rng)
        result = run_two_stage(market)
        matching = result.matching
        assert matching.is_interference_free(market.interference)
        assert is_nash_stable(market, matching)
        # No physical buyer may hold the same channel twice -- guaranteed
        # by the clone cliques, but assert it explicitly end to end.
        held = {}
        for virtual, channel in matching.matched_buyers():
            owner = market.buyer_owner[virtual]
            held.setdefault(owner, []).append(channel)
        for owner, channels in held.items():
            assert len(channels) == len(set(channels))


class TestIterateStageTwo:
    def test_fixed_point_from_toy_stage_one(self):
        from repro.core.deferred_acceptance import deferred_acceptance
        from repro.core.two_stage import iterate_stage_two
        from repro.workloads.scenarios import toy_example_market

        market = toy_example_market()
        stage_one = deferred_acceptance(market)
        matching, rounds, iterations = iterate_stage_two(
            market, stage_one.matching
        )
        assert matching.social_welfare(market.utilities) == pytest.approx(30.0)
        assert iterations >= 1
        assert rounds >= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_fixed_point_is_nash_stable_from_random_seeds(self, seed):
        """Stage II iterated from an ARBITRARY feasible seed must end
        Nash-stable -- the property a single pass does not guarantee."""
        from repro.core.two_stage import iterate_stage_two
        from repro.core.matching import Matching
        from repro.optimal.random_baseline import random_matching

        market = paper_simulation_market(
            16, 4, np.random.default_rng([321, seed])
        )
        seed_matching = random_matching(market, np.random.default_rng(seed))
        matching, _rounds, _iterations = iterate_stage_two(market, seed_matching)
        assert matching.is_interference_free(market.interference)
        assert is_nash_stable(market, matching)

    def test_regression_warm_start_gap(self):
        """The exact dynamic-market scenario where one Stage-II pass left a
        profitable deviation (buyer could jump to a vacated channel); the
        fixed-point iteration must close it."""
        from repro.dynamic.generator import DynamicMarketGenerator
        from repro.dynamic.online import OnlineMatcher, RematchStrategy

        generator = DynamicMarketGenerator(
            num_channels=5,
            initial_buyers=40,
            arrival_rate=5.0,
            departure_prob=0.12,
            drift_sigma=0.05,
            rng=np.random.default_rng([680, 2]),
        )
        matcher = OnlineMatcher(RematchStrategy.WARM)
        for epoch in generator.epochs(12):
            outcome = matcher.step(epoch)
            assert is_nash_stable(epoch.market, outcome.matching), epoch.index
