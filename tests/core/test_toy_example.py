"""Round-by-round verification of the paper's toy example (Figs. 1-2).

Buyer/seller ids are 0-indexed: paper buyers 1-5 are 0-4, sellers a/b/c
are channels 0/1/2.  Every assertion below corresponds to a subfigure of
Fig. 1 (Stage I) or Fig. 2 (Stage II).
"""

from __future__ import annotations

import pytest

from repro.core.deferred_acceptance import deferred_acceptance
from repro.core.two_stage import run_two_stage
from repro.core.stability import is_individually_rational, is_nash_stable
from repro.workloads.scenarios import toy_example_market


@pytest.fixture(scope="module")
def result():
    return run_two_stage(toy_example_market())


class TestStageOneTrace:
    def test_round1_first_proposals(self, result):
        """Fig. 1(a): 1,2 -> a; 3,4 -> b; 5 -> c."""
        r1 = result.stage_one.rounds[0]
        assert r1.proposals == {0: (0, 1), 1: (2, 3), 2: (4,)}

    def test_round1_waitlists(self, result):
        """Fig. 1(b): a:{1}, b:{3}, c:{5}."""
        r1 = result.stage_one.rounds[0]
        assert r1.waitlists == {0: (0,), 1: (2,), 2: (4,)}

    def test_round2_eviction_of_buyer1(self, result):
        """Fig. 1(c): buyer 4 displaces buyer 1 at seller a."""
        r2 = result.stage_one.rounds[1]
        assert r2.proposals == {0: (3,), 1: (1,)}
        assert (0, 0) in r2.evictions  # buyer 1 (id 0) evicted from a
        assert r2.waitlists == {0: (3,), 1: (2,), 2: (4,)}

    def test_round3_buyer5_evicted_from_c(self, result):
        """Fig. 1(d): buyer 2 displaces buyer 5 at seller c."""
        r3 = result.stage_one.rounds[2]
        assert r3.proposals == {1: (0,), 2: (1,)}
        assert (4, 2) in r3.evictions
        assert r3.waitlists == {0: (3,), 1: (2,), 2: (1,)}

    def test_round4_final_waitlists(self, result):
        """Fig. 1(e): a:{4}, b:{3,5}, c:{1,2}."""
        r4 = result.stage_one.rounds[3]
        assert r4.waitlists == {0: (3,), 1: (2, 4), 2: (0, 1)}

    def test_stage1_takes_four_rounds(self, result):
        assert result.rounds_stage1 == 4

    def test_stage1_welfare_is_27(self, result):
        assert result.welfare_stage1 == pytest.approx(27.0)


class TestStageTwoTrace:
    def test_transfer_round1_applications(self, result):
        """Fig. 2(a): 1,2 apply to a; 4 applies to b; 5 applies to c."""
        t1 = result.stage_two.transfer_rounds[0]
        assert t1.applications == {0: (0, 1), 1: (3,), 2: (4,)}

    def test_transfer_round1_decisions(self, result):
        """Fig. 2(b): only buyer 2's transfer (c -> a) is granted."""
        t1 = result.stage_two.transfer_rounds[0]
        assert t1.accepted == ((1, 2, 0),)
        assert set(t1.rejected) == {(0, 0), (3, 1), (4, 2)}

    def test_transfer_round2_buyer1_tries_b(self, result):
        t2 = result.stage_two.transfer_rounds[1]
        assert t2.applications == {1: (0,)}
        assert t2.accepted == ()
        assert t2.rejected == ((0, 1),)

    def test_phase1_takes_two_rounds(self, result):
        assert result.rounds_phase1 == 2

    def test_invitation_seller_c_invites_buyer5(self, result):
        """Fig. 2(c)/(d): c invites buyer 5, who moves from b to c."""
        inv = result.stage_two.invitation_rounds[0]
        assert inv.invitations == ((2, 4),)
        assert inv.accepted == ((4, 1, 2),)

    def test_phase2_takes_one_round(self, result):
        assert result.rounds_phase2 == 1

    def test_welfare_after_phase1_is_29(self, result):
        # 27 - (buyer2's 4 on c) + (buyer2's 6 on a) = 29.
        assert result.welfare_phase1 == pytest.approx(29.0)


class TestFinalOutcome:
    def test_final_matching_matches_fig2d(self, result):
        """Fig. 2(d): a:{2,4}, b:{3}, c:{1,5}."""
        matching = result.matching
        assert matching.coalition(0) == frozenset({1, 3})
        assert matching.coalition(1) == frozenset({2})
        assert matching.coalition(2) == frozenset({0, 4})

    def test_final_welfare_is_30(self, result):
        assert result.social_welfare == pytest.approx(30.0)

    def test_result_is_stable(self, result):
        market = toy_example_market()
        assert is_individually_rational(market, result.matching)
        assert is_nash_stable(market, result.matching)

    def test_stage_one_alone_is_not_nash_stable(self):
        """The instability motivating Stage II: buyer 2 can join seller a."""
        market = toy_example_market()
        stage_one = deferred_acceptance(market)
        assert not is_nash_stable(market, stage_one.matching)
