"""Tests for the stability checkers (Definitions 2-5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.stability import (
    is_individually_rational,
    is_nash_stable,
    is_pairwise_stable,
    nash_blocking_moves,
    pairwise_blocking_pairs,
    pareto_dominates_for_buyers,
)
from repro.interference.generators import interference_map_from_edge_lists


def market_of(utilities, per_channel_edges):
    utilities = np.asarray(utilities, dtype=float)
    imap = interference_map_from_edge_lists(utilities.shape[0], per_channel_edges)
    return SpectrumMarket(utilities, imap)


@pytest.fixture
def market():
    """3 buyers, 2 channels; 0-1 interfere on channel 0."""
    return market_of(
        [[4.0, 2.0], [3.0, 5.0], [1.0, 2.5]],
        [[(0, 1)], []],
    )


class TestIndividualRationality:
    def test_empty_matching_is_rational(self, market):
        assert is_individually_rational(market, Matching(2, 3))

    def test_clean_matching_is_rational(self, market):
        mu = Matching(2, 3)
        mu.match(0, 0)
        mu.match(1, 1)
        assert is_individually_rational(market, mu)

    def test_interfering_matching_is_irrational(self, market):
        mu = Matching(2, 3)
        mu.match(0, 0)
        mu.match(1, 0)  # conflicts with 0 on channel 0
        assert not is_individually_rational(market, mu)


class TestNashStability:
    def test_everyone_on_favorite_is_stable(self, market):
        mu = Matching(2, 3)
        mu.match(0, 0)  # 4 is buyer 0's max
        mu.match(1, 1)  # 5 is buyer 1's max
        mu.match(2, 1)  # 2.5 is buyer 2's max
        assert is_nash_stable(market, mu)

    def test_detects_open_better_channel(self, market):
        mu = Matching(2, 3)
        mu.match(0, 1)  # buyer 0 gets 2, but channel 0 is free and worth 4
        moves = list(nash_blocking_moves(market, mu))
        assert any(m.buyer == 0 and m.channel == 0 for m in moves)
        assert not is_nash_stable(market, mu)

    def test_interference_blocks_deviation(self, market):
        mu = Matching(2, 3)
        mu.match(1, 0)  # buyer 1 parks on channel 0 (value 3 < her 5)...
        mu.match(0, 1)
        # Buyer 0 would love channel 0 (4 > 2) but interferes with buyer 1.
        moves = list(nash_blocking_moves(market, mu))
        assert not any(m.buyer == 0 and m.channel == 0 for m in moves)
        # Buyer 1 deviating to channel 1 (5 > 3) IS a blocking move.
        assert any(m.buyer == 1 and m.channel == 1 for m in moves)

    def test_unmatched_buyer_with_open_channel_blocks(self, market):
        mu = Matching(2, 3)  # everyone unmatched; channel space wide open
        assert not is_nash_stable(market, mu)
        moves = list(nash_blocking_moves(market, mu))
        assert any(m.buyer == 2 for m in moves)

    def test_blocking_move_reports_utilities(self, market):
        mu = Matching(2, 3)
        mu.match(0, 1)
        move = next(m for m in nash_blocking_moves(market, mu) if m.buyer == 0)
        assert move.current_utility == pytest.approx(2.0)
        assert move.deviation_utility == pytest.approx(4.0)


class TestPairwiseStability:
    def test_blocking_pair_with_eviction(self):
        # Buyer 1 (price 5) would displace buyer 0 (price 3) on channel 0;
        # they interfere, and buyer 1 currently sits on a worse channel.
        market = market_of(
            [[3.0, 0.0], [5.0, 1.0]],
            [[(0, 1)], []],
        )
        mu = Matching(2, 2)
        mu.match(0, 0)
        mu.match(1, 1)
        pairs = list(pairwise_blocking_pairs(market, mu))
        assert len(pairs) == 1
        pair = pairs[0]
        assert (pair.channel, pair.buyer) == (0, 1)
        assert pair.evicted == (0,)
        assert pair.seller_gain == pytest.approx(2.0)
        assert not is_pairwise_stable(market, mu)

    def test_no_block_when_eviction_too_expensive(self):
        market = market_of(
            [[6.0, 0.0], [5.0, 1.0]],
            [[(0, 1)], []],
        )
        mu = Matching(2, 2)
        mu.match(0, 0)  # price 6 > buyer 1's 5: seller won't swap
        mu.match(1, 1)
        assert is_pairwise_stable(market, mu)

    def test_no_block_when_buyer_already_happy(self):
        market = market_of(
            [[3.0, 0.0], [5.0, 9.0]],
            [[(0, 1)], []],
        )
        mu = Matching(2, 2)
        mu.match(0, 0)
        mu.match(1, 1)  # buyer 1 earns 9 > 5: no desire to move
        assert is_pairwise_stable(market, mu)

    def test_nash_blocking_implies_pairwise_blocking(self, market):
        # An open better channel blocks in both senses (S = empty set).
        mu = Matching(2, 3)
        mu.match(0, 1)
        assert not is_nash_stable(market, mu)
        assert not is_pairwise_stable(market, mu)


class TestParetoDomination:
    def test_detects_strict_improvement(self, market):
        base = Matching(2, 3)
        base.match(0, 1)
        better = Matching(2, 3)
        better.match(0, 0)
        assert pareto_dominates_for_buyers(market, better, base)

    def test_rejects_when_someone_loses(self, market):
        base = Matching(2, 3)
        base.match(0, 0)
        base.match(1, 1)
        swap = Matching(2, 3)
        swap.match(0, 1)  # 0 drops from 4 to 2
        swap.match(1, 0)
        assert not pareto_dominates_for_buyers(market, swap, base)

    def test_identical_matchings_do_not_dominate(self, market):
        base = Matching(2, 3)
        base.match(0, 0)
        assert not pareto_dominates_for_buyers(market, base.copy(), base)
