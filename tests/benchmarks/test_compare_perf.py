"""Unit tests for the perf gate's multi-core parallel-speedup rule.

``benchmarks/compare_perf.py`` must fail a run whose sweep report shows
``parallel_speedup <= 1`` on a multi-core machine, and skip the rule
cleanly on single-core runners where beating serial is impossible.
"""

from __future__ import annotations

import json
import os

from benchmarks.compare_perf import (
    REQUIRED_BASELINE_CPUS,
    check_baseline_env,
    check_parallel_speedup,
    main,
)


def _sweep_report(speedup, cpu_count, **overrides):
    report = {
        "benchmark": "sweep",
        "serial": {"median_s": 0.40},
        "parallel": {"median_s": 0.40 / speedup if speedup else 0.40},
        "parallel_speedup": speedup,
        "identical_rows": True,
        "jobs": 2,
        "env": {"python": "3.11.7", "cpu_count": cpu_count, "jobs": 2},
    }
    report.update(overrides)
    return report


class TestCheckParallelSpeedup:
    def test_single_core_skips_cleanly(self):
        assert check_parallel_speedup(_sweep_report(0.67, cpu_count=1)) is None

    def test_multi_core_winning_passes(self):
        assert check_parallel_speedup(_sweep_report(1.62, cpu_count=4)) is None

    def test_multi_core_losing_fails(self):
        failure = check_parallel_speedup(_sweep_report(0.93, cpu_count=4))
        assert failure is not None
        assert "0.93x" in failure and "4-core" in failure

    def test_exactly_one_is_not_a_win(self):
        assert check_parallel_speedup(_sweep_report(1.0, cpu_count=2))

    def test_missing_speedup_fails_on_multi_core(self):
        report = _sweep_report(1.5, cpu_count=8)
        del report["parallel_speedup"]
        failure = check_parallel_speedup(report)
        assert failure is not None and "missing" in failure

    def test_unknown_environment_skips(self):
        # A report with no env block (or a mangled one) cannot prove the
        # machine was multi-core, so the rule must not fire.
        report = _sweep_report(0.5, cpu_count=1)
        del report["env"]
        assert check_parallel_speedup(report) is None
        assert (
            check_parallel_speedup(_sweep_report(0.5, cpu_count="n/a")) is None
        )


class TestGateIntegration:
    """End-to-end through ``compare_perf.main`` on tmp report dirs."""

    def _write(self, directory, report):
        os.makedirs(directory, exist_ok=True)
        with open(
            os.path.join(directory, "BENCH_sweep.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(report, handle)

    def _run(self, tmp_path, baseline, current, *extra):
        base_dir = str(tmp_path / "baseline")
        cur_dir = str(tmp_path / "current")
        self._write(base_dir, baseline)
        self._write(cur_dir, current)
        return main([cur_dir, "--baseline-dir", base_dir, *extra])

    def test_multi_core_regression_fails(self, tmp_path, capsys):
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.85, cpu_count=4)
        assert self._run(tmp_path, baseline, current) == 1
        assert "parallel_speedup" in capsys.readouterr().out

    def test_rule_applies_in_ratios_only_mode(self, tmp_path):
        # The rule keys off the *current* machine, so CI's ratios-only
        # mode must enforce it too.
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.85, cpu_count=4)
        assert self._run(tmp_path, baseline, current, "--ratios-only") == 1

    def test_single_core_current_passes(self, tmp_path):
        # Baseline from a multi-core box, current run on a single-core
        # runner (CI's cross-machine ratios-only mode): the rule skips,
        # nothing else regressed, gate passes.
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.67, cpu_count=1)
        assert self._run(tmp_path, baseline, current, "--ratios-only") == 0

    def test_multi_core_win_passes(self, tmp_path):
        baseline = _sweep_report(1.2, cpu_count=4)
        current = _sweep_report(1.4, cpu_count=4)
        assert self._run(tmp_path, baseline, current) == 0


class TestCheckBaselineEnv:
    """The env-metadata ratchet on the committed sweep baseline."""

    def test_satisfying_baseline_passes(self):
        report = _sweep_report(0.9, cpu_count=REQUIRED_BASELINE_CPUS)
        assert check_baseline_env(report) is None

    def test_below_ratchet_fails(self):
        report = _sweep_report(1.6, cpu_count=1)
        failure = check_baseline_env(report, required_cpus=2)
        assert failure is not None
        assert "cpu_count 1" in failure and "required 2" in failure

    def test_missing_env_block_fails(self):
        report = _sweep_report(1.6, cpu_count=4)
        del report["env"]
        failure = check_baseline_env(report)
        assert failure is not None and "no env.cpu_count" in failure

    def test_missing_cpu_count_fails(self):
        report = _sweep_report(1.6, cpu_count=4)
        del report["env"]["cpu_count"]
        assert check_baseline_env(report) is not None

    def test_non_integer_cpu_count_fails(self):
        failure = check_baseline_env(_sweep_report(1.6, cpu_count="n/a"))
        assert failure is not None and "not an integer" in failure

    def test_gate_rejects_metadata_regressed_baseline(self, tmp_path, capsys):
        # A baseline stripped of its env record must fail the gate even
        # when every timing is fine: losing the metadata would silently
        # disable the multi-core parallel_speedup rule forever.
        baseline = _sweep_report(0.9, cpu_count=1)
        del baseline["env"]
        current = _sweep_report(0.9, cpu_count=1)
        gate = TestGateIntegration()
        assert gate._run(tmp_path, baseline, current, "--ratios-only") == 1
        assert "env.cpu_count" in capsys.readouterr().out


class TestCommittedBaselines:
    """The committed baselines must themselves satisfy the gate."""

    def test_committed_sweep_reports_pass_the_rule(self):
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for rel in (
            "benchmarks/baselines/BENCH_sweep.json",
            "benchmarks/baselines/quick/BENCH_sweep.json",
        ):
            with open(os.path.join(root, rel), "r", encoding="utf-8") as handle:
                report = json.load(handle)
            assert check_parallel_speedup(report) is None, rel
            # Honest metadata: the env block records the producing
            # machine and the sweep's worker count, and satisfies the
            # REQUIRED_BASELINE_CPUS ratchet (bumped whenever a
            # beefier-machine baseline is committed).
            assert check_baseline_env(report) is None, rel
            assert report["env"]["cpu_count"] >= REQUIRED_BASELINE_CPUS
            assert report["env"]["jobs"] >= 2
