"""Unit tests for the perf gate's rules and failure attribution.

``benchmarks/compare_perf.py`` must fail a run whose sweep report shows
``parallel_speedup <= 1`` on a multi-core machine, and skip the rule
cleanly on single-core runners where beating serial is impossible.
A failing kernels report must *explain itself*: deterministic counter
drift is named an algorithmic regression, wall-time movement with flat
counters is named environment noise, and every timing failure carries
the environment and sample spread it was judged under.
"""

from __future__ import annotations

import json
import os

from benchmarks.compare_perf import (
    REQUIRED_BASELINE_CPUS,
    SPREAD_WARN,
    attribution_lines,
    check_baseline_env,
    check_parallel_speedup,
    main,
    sample_spread,
)


def _sweep_report(speedup, cpu_count, **overrides):
    report = {
        "benchmark": "sweep",
        "serial": {"median_s": 0.40},
        "parallel": {"median_s": 0.40 / speedup if speedup else 0.40},
        "parallel_speedup": speedup,
        "identical_rows": True,
        "jobs": 2,
        "env": {"python": "3.11.7", "cpu_count": cpu_count, "jobs": 2},
    }
    report.update(overrides)
    return report


class TestCheckParallelSpeedup:
    def test_single_core_skips_cleanly(self):
        assert check_parallel_speedup(_sweep_report(0.67, cpu_count=1)) is None

    def test_multi_core_winning_passes(self):
        assert check_parallel_speedup(_sweep_report(1.62, cpu_count=4)) is None

    def test_multi_core_losing_fails(self):
        failure = check_parallel_speedup(_sweep_report(0.93, cpu_count=4))
        assert failure is not None
        assert "0.93x" in failure and "4-core" in failure

    def test_exactly_one_is_not_a_win(self):
        assert check_parallel_speedup(_sweep_report(1.0, cpu_count=2))

    def test_missing_speedup_fails_on_multi_core(self):
        report = _sweep_report(1.5, cpu_count=8)
        del report["parallel_speedup"]
        failure = check_parallel_speedup(report)
        assert failure is not None and "missing" in failure

    def test_unknown_environment_skips(self):
        # A report with no env block (or a mangled one) cannot prove the
        # machine was multi-core, so the rule must not fire.
        report = _sweep_report(0.5, cpu_count=1)
        del report["env"]
        assert check_parallel_speedup(report) is None
        assert (
            check_parallel_speedup(_sweep_report(0.5, cpu_count="n/a")) is None
        )


class TestGateIntegration:
    """End-to-end through ``compare_perf.main`` on tmp report dirs."""

    def _write(self, directory, report):
        os.makedirs(directory, exist_ok=True)
        with open(
            os.path.join(directory, "BENCH_sweep.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(report, handle)

    def _run(self, tmp_path, baseline, current, *extra):
        base_dir = str(tmp_path / "baseline")
        cur_dir = str(tmp_path / "current")
        self._write(base_dir, baseline)
        self._write(cur_dir, current)
        return main([cur_dir, "--baseline-dir", base_dir, *extra])

    def test_multi_core_regression_fails(self, tmp_path, capsys):
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.85, cpu_count=4)
        assert self._run(tmp_path, baseline, current) == 1
        assert "parallel_speedup" in capsys.readouterr().out

    def test_rule_applies_in_ratios_only_mode(self, tmp_path):
        # The rule keys off the *current* machine, so CI's ratios-only
        # mode must enforce it too.
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.85, cpu_count=4)
        assert self._run(tmp_path, baseline, current, "--ratios-only") == 1

    def test_single_core_current_passes(self, tmp_path):
        # Baseline from a multi-core box, current run on a single-core
        # runner (CI's cross-machine ratios-only mode): the rule skips,
        # nothing else regressed, gate passes.
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.67, cpu_count=1)
        assert self._run(tmp_path, baseline, current, "--ratios-only") == 0

    def test_multi_core_win_passes(self, tmp_path):
        baseline = _sweep_report(1.2, cpu_count=4)
        current = _sweep_report(1.4, cpu_count=4)
        assert self._run(tmp_path, baseline, current) == 0


class TestCheckBaselineEnv:
    """The env-metadata ratchet on the committed sweep baseline."""

    def test_satisfying_baseline_passes(self):
        report = _sweep_report(0.9, cpu_count=REQUIRED_BASELINE_CPUS)
        assert check_baseline_env(report) is None

    def test_below_ratchet_fails(self):
        report = _sweep_report(1.6, cpu_count=1)
        failure = check_baseline_env(report, required_cpus=2)
        assert failure is not None
        assert "cpu_count 1" in failure and "required 2" in failure

    def test_missing_env_block_fails(self):
        report = _sweep_report(1.6, cpu_count=4)
        del report["env"]
        failure = check_baseline_env(report)
        assert failure is not None and "no env.cpu_count" in failure

    def test_missing_cpu_count_fails(self):
        report = _sweep_report(1.6, cpu_count=4)
        del report["env"]["cpu_count"]
        assert check_baseline_env(report) is not None

    def test_non_integer_cpu_count_fails(self):
        failure = check_baseline_env(_sweep_report(1.6, cpu_count="n/a"))
        assert failure is not None and "not an integer" in failure

    def test_gate_rejects_metadata_regressed_baseline(self, tmp_path, capsys):
        # A baseline stripped of its env record must fail the gate even
        # when every timing is fine: losing the metadata would silently
        # disable the multi-core parallel_speedup rule forever.
        baseline = _sweep_report(0.9, cpu_count=1)
        del baseline["env"]
        current = _sweep_report(0.9, cpu_count=1)
        gate = TestGateIntegration()
        assert gate._run(tmp_path, baseline, current, "--ratios-only") == 1
        assert "env.cpu_count" in capsys.readouterr().out


def _kernel_side(median, counters=None, spans=None, times=None):
    times = times if times is not None else [median, median, median]
    side = {
        "median_s": median,
        "min_s": min(times),
        "max_s": max(times),
        "stdev_s": 0.0,
        "times_s": times,
        "counters": counters
        if counters is not None
        else {"soa.popcount_word_ops": 85000, "soa.reduceat_row_ops": 23000},
    }
    if spans is not None:
        side["spans"] = spans
    else:
        side["spans"] = [
            {
                "name": "stage1.mwis",
                "count": 40,
                "wall_s": median * 0.8,
                "cpu_s": median * 0.8,
                "self_s": median * 0.8,
            },
            {
                "name": "stage1",
                "count": 1,
                "wall_s": median,
                "cpu_s": median,
                "self_s": median * 0.2,
            },
        ]
    return side


def _kernels_report(fast_median=0.010, reference_median=0.050, **side_kwargs):
    fast = _kernel_side(fast_median, **side_kwargs)
    reference = _kernel_side(reference_median)
    return {
        "benchmark": "kernels",
        "fast": fast,
        "scalar": _kernel_side(0.020),
        "reference": reference,
        "speedup": reference["median_s"] / fast["median_s"],
        "identical_matching": True,
        "env": {"python": "3.11.7", "cpu_count": 1, "jobs": 2},
    }


class TestAttribution:
    def test_counter_drift_is_named_algorithmic(self):
        baseline = _kernels_report()
        current = _kernels_report(
            fast_median=0.021,
            counters={
                "soa.popcount_word_ops": 180000,
                "soa.reduceat_row_ops": 23000,
            },
        )
        text = "\n".join(attribution_lines(baseline, current))
        assert "attribution[fast]" in text
        assert "soa.popcount_word_ops 85000 -> 180000 (2.12x)" in text
        assert "algorithmic regression" in text

    def test_flat_counters_with_moved_spans_read_as_noise(self):
        baseline = _kernels_report()
        current = _kernels_report(fast_median=0.021)
        text = "\n".join(attribution_lines(baseline, current))
        assert "stage1.mwis +110%" in text
        assert "environment noise" in text

    def test_reports_without_capture_say_so(self):
        lines = attribution_lines(
            {"fast": {"median_s": 0.01}}, {"fast": {"median_s": 0.02}}
        )
        assert len(lines) == 1 and "attribution unavailable" in lines[0]

    def test_gate_failure_includes_attribution(self, tmp_path, capsys):
        # The acceptance scenario: a synthetic kernel slowdown with
        # counter drift must fail the gate AND name the phase and the
        # counter delta in its output.
        baseline = _kernels_report()
        current = _kernels_report(
            fast_median=0.05,
            counters={
                "soa.popcount_word_ops": 180000,
                "soa.reduceat_row_ops": 23000,
            },
        )
        base_dir, cur_dir = str(tmp_path / "b"), str(tmp_path / "c")
        for directory, report in ((base_dir, baseline), (cur_dir, current)):
            os.makedirs(directory)
            with open(
                os.path.join(directory, "BENCH_kernels.json"),
                "w",
                encoding="utf-8",
            ) as handle:
                json.dump(report, handle)
        assert main([cur_dir, "--baseline-dir", base_dir]) == 1
        out = capsys.readouterr().out
        assert "fast.median_s regressed" in out
        assert "env.cpu_count=1" in out
        assert "soa.popcount_word_ops 85000 -> 180000" in out
        assert "algorithmic regression" in out


class TestNoiseRules:
    def test_sample_spread(self):
        assert sample_spread(
            {"median_s": 0.10, "times_s": [0.09, 0.10, 0.14]}
        ) == (0.14 - 0.09) / 0.10
        assert sample_spread({"median_s": 0.10}) is None
        assert sample_spread({"median_s": 0.10, "times_s": [0.1]}) is None

    def test_high_spread_warns_without_failing(self, tmp_path, capsys):
        baseline = _kernels_report()
        current = _kernels_report(
            fast_median=0.010, times=[0.006, 0.010, 0.013]
        )
        base_dir = str(tmp_path / "baseline")
        cur_dir = str(tmp_path / "current")
        for directory, report in ((base_dir, baseline), (cur_dir, current)):
            os.makedirs(directory)
            with open(
                os.path.join(directory, "BENCH_kernels.json"),
                "w",
                encoding="utf-8",
            ) as handle:
                json.dump(report, handle)
        assert main([cur_dir, "--baseline-dir", base_dir]) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out and "spread 70%" in out

    def test_noise_floor_guard_downgrades_noisy_regression(
        self, tmp_path, capsys
    ):
        # Median over the ceiling, but the minimum still under it on a
        # high-spread sample: the machine demonstrably reaches the old
        # speed, so the gate warns instead of failing.
        baseline = _kernels_report(fast_median=0.010)
        current = _kernels_report(
            fast_median=0.014, times=[0.009, 0.014, 0.030]
        )
        # The measured ratio would wobble with the same noise; pin it so
        # this test isolates the median-regression rule.
        current["speedup"] = baseline["speedup"]
        base_dir, cur_dir = str(tmp_path / "b"), str(tmp_path / "c")
        for directory, report in ((base_dir, baseline), (cur_dir, current)):
            os.makedirs(directory)
            with open(
                os.path.join(directory, "BENCH_kernels.json"),
                "w",
                encoding="utf-8",
            ) as handle:
                json.dump(report, handle)
        assert main([cur_dir, "--baseline-dir", base_dir]) == 0
        out = capsys.readouterr().out
        assert "noise-floor guard" in out and "rerun to confirm" in out

    def test_low_spread_regression_still_fails(self, tmp_path, capsys):
        baseline = _kernels_report(fast_median=0.010)
        current = _kernels_report(
            fast_median=0.014, times=[0.0138, 0.014, 0.0142]
        )
        base_dir, cur_dir = str(tmp_path / "b"), str(tmp_path / "c")
        for directory, report in ((base_dir, baseline), (cur_dir, current)):
            os.makedirs(directory)
            with open(
                os.path.join(directory, "BENCH_kernels.json"),
                "w",
                encoding="utf-8",
            ) as handle:
                json.dump(report, handle)
        assert main([cur_dir, "--baseline-dir", base_dir]) == 1
        assert "spread 3%" in capsys.readouterr().out

    def test_spread_warn_threshold_is_fifteen_percent(self):
        assert SPREAD_WARN == 0.15


class TestCommittedBaselines:
    """The committed baselines must themselves satisfy the gate."""

    def test_committed_sweep_reports_pass_the_rule(self):
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for rel in (
            "benchmarks/baselines/BENCH_sweep.json",
            "benchmarks/baselines/quick/BENCH_sweep.json",
        ):
            with open(os.path.join(root, rel), "r", encoding="utf-8") as handle:
                report = json.load(handle)
            assert check_parallel_speedup(report) is None, rel
            # Honest metadata: the env block records the producing
            # machine and the sweep's worker count, and satisfies the
            # REQUIRED_BASELINE_CPUS ratchet (bumped whenever a
            # beefier-machine baseline is committed).
            assert check_baseline_env(report) is None, rel
            assert report["env"]["cpu_count"] >= REQUIRED_BASELINE_CPUS
            assert report["env"]["jobs"] >= 2
