"""Unit tests for the perf gate's multi-core parallel-speedup rule.

``benchmarks/compare_perf.py`` must fail a run whose sweep report shows
``parallel_speedup <= 1`` on a multi-core machine, and skip the rule
cleanly on single-core runners where beating serial is impossible.
"""

from __future__ import annotations

import json
import os

from benchmarks.compare_perf import check_parallel_speedup, main


def _sweep_report(speedup, cpu_count, **overrides):
    report = {
        "benchmark": "sweep",
        "serial": {"median_s": 0.40},
        "parallel": {"median_s": 0.40 / speedup if speedup else 0.40},
        "parallel_speedup": speedup,
        "identical_rows": True,
        "jobs": 2,
        "env": {"python": "3.11.7", "cpu_count": cpu_count, "jobs": 2},
    }
    report.update(overrides)
    return report


class TestCheckParallelSpeedup:
    def test_single_core_skips_cleanly(self):
        assert check_parallel_speedup(_sweep_report(0.67, cpu_count=1)) is None

    def test_multi_core_winning_passes(self):
        assert check_parallel_speedup(_sweep_report(1.62, cpu_count=4)) is None

    def test_multi_core_losing_fails(self):
        failure = check_parallel_speedup(_sweep_report(0.93, cpu_count=4))
        assert failure is not None
        assert "0.93x" in failure and "4-core" in failure

    def test_exactly_one_is_not_a_win(self):
        assert check_parallel_speedup(_sweep_report(1.0, cpu_count=2))

    def test_missing_speedup_fails_on_multi_core(self):
        report = _sweep_report(1.5, cpu_count=8)
        del report["parallel_speedup"]
        failure = check_parallel_speedup(report)
        assert failure is not None and "missing" in failure

    def test_unknown_environment_skips(self):
        # A report with no env block (or a mangled one) cannot prove the
        # machine was multi-core, so the rule must not fire.
        report = _sweep_report(0.5, cpu_count=1)
        del report["env"]
        assert check_parallel_speedup(report) is None
        assert (
            check_parallel_speedup(_sweep_report(0.5, cpu_count="n/a")) is None
        )


class TestGateIntegration:
    """End-to-end through ``compare_perf.main`` on tmp report dirs."""

    def _write(self, directory, report):
        os.makedirs(directory, exist_ok=True)
        with open(
            os.path.join(directory, "BENCH_sweep.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(report, handle)

    def _run(self, tmp_path, baseline, current, *extra):
        base_dir = str(tmp_path / "baseline")
        cur_dir = str(tmp_path / "current")
        self._write(base_dir, baseline)
        self._write(cur_dir, current)
        return main([cur_dir, "--baseline-dir", base_dir, *extra])

    def test_multi_core_regression_fails(self, tmp_path, capsys):
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.85, cpu_count=4)
        assert self._run(tmp_path, baseline, current) == 1
        assert "parallel_speedup" in capsys.readouterr().out

    def test_rule_applies_in_ratios_only_mode(self, tmp_path):
        # The rule keys off the *current* machine, so CI's ratios-only
        # mode must enforce it too.
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.85, cpu_count=4)
        assert self._run(tmp_path, baseline, current, "--ratios-only") == 1

    def test_single_core_current_passes(self, tmp_path):
        # Baseline from a multi-core box, current run on a single-core
        # runner (CI's cross-machine ratios-only mode): the rule skips,
        # nothing else regressed, gate passes.
        baseline = _sweep_report(1.5, cpu_count=4)
        current = _sweep_report(0.67, cpu_count=1)
        assert self._run(tmp_path, baseline, current, "--ratios-only") == 0

    def test_multi_core_win_passes(self, tmp_path):
        baseline = _sweep_report(1.2, cpu_count=4)
        current = _sweep_report(1.4, cpu_count=4)
        assert self._run(tmp_path, baseline, current) == 0


class TestCommittedBaselines:
    """The committed baselines must themselves satisfy the gate."""

    def test_committed_sweep_reports_pass_the_rule(self):
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for rel in (
            "benchmarks/baselines/BENCH_sweep.json",
            "benchmarks/baselines/quick/BENCH_sweep.json",
        ):
            with open(os.path.join(root, rel), "r", encoding="utf-8") as handle:
                report = json.load(handle)
            assert check_parallel_speedup(report) is None, rel
            # Honest metadata: the env block records the producing
            # machine and the sweep's worker count.
            assert report["env"]["cpu_count"] >= 1
            assert report["env"]["jobs"] >= 2
