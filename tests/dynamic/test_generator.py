"""Tests for the dynamic-market epoch generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic.generator import DynamicMarketGenerator
from repro.errors import MarketConfigurationError


def make_generator(seed=0, **overrides):
    params = dict(
        num_channels=4,
        initial_buyers=20,
        arrival_rate=3.0,
        departure_prob=0.1,
        drift_sigma=0.05,
        rng=np.random.default_rng(seed),
    )
    params.update(overrides)
    return DynamicMarketGenerator(**params)


class TestValidation:
    def test_parameter_guards(self):
        with pytest.raises(MarketConfigurationError):
            make_generator(num_channels=0)
        with pytest.raises(MarketConfigurationError):
            make_generator(initial_buyers=0)
        with pytest.raises(MarketConfigurationError):
            make_generator(arrival_rate=-1.0)
        with pytest.raises(MarketConfigurationError):
            make_generator(departure_prob=1.0)
        with pytest.raises(MarketConfigurationError):
            make_generator(drift_sigma=-0.1)


class TestEpochStream:
    def test_epoch_zero_is_initial_population(self):
        generator = make_generator()
        epoch = generator.next_epoch()
        assert epoch.index == 0
        assert epoch.market.num_buyers == 20
        assert epoch.arrived == ()
        assert epoch.departed == ()
        assert epoch.buyer_ids == tuple(range(20))

    def test_ids_are_persistent_and_never_reused(self):
        generator = make_generator(seed=3)
        seen_max = -1
        previous_ids = None
        for epoch in generator.epochs(8):
            # Arrived ids are strictly fresh.
            for buyer_id in epoch.arrived:
                assert buyer_id > seen_max
            seen_max = max([seen_max, *epoch.buyer_ids])
            if previous_ids is not None:
                survivors = set(previous_ids) - set(epoch.departed)
                assert survivors <= set(epoch.buyer_ids)
            previous_ids = epoch.buyer_ids

    def test_departures_and_arrivals_reconcile(self):
        generator = make_generator(seed=7)
        previous = generator.next_epoch()
        for _ in range(6):
            epoch = generator.next_epoch()
            expected = (
                set(previous.buyer_ids) - set(epoch.departed)
            ) | set(epoch.arrived)
            assert set(epoch.buyer_ids) == expected
            previous = epoch

    def test_market_rows_align_with_ids(self):
        generator = make_generator(seed=1)
        epoch = generator.next_epoch()
        for row, buyer_id in enumerate(epoch.buyer_ids):
            assert epoch.row_of(buyer_id) == row
        assert epoch.row_of(10_000) is None

    def test_determinism(self):
        a = [e.buyer_ids for e in make_generator(seed=9).epochs(5)]
        b = [e.buyer_ids for e in make_generator(seed=9).epochs(5)]
        assert a == b

    def test_population_never_empties(self):
        generator = make_generator(
            seed=2, initial_buyers=1, departure_prob=0.95, arrival_rate=0.0
        )
        for epoch in generator.epochs(10):
            assert epoch.market.num_buyers >= 1


class TestGeometryStability:
    def test_survivor_interference_is_stable(self):
        """The warm-start soundness invariant: surviving pairs keep their
        interference status across epochs."""
        generator = make_generator(seed=11)
        previous = generator.next_epoch()
        for _ in range(5):
            epoch = generator.next_epoch()
            shared = [b for b in previous.buyer_ids if b in set(epoch.buyer_ids)]
            for idx_a in range(len(shared)):
                for idx_b in range(idx_a + 1, len(shared)):
                    a, b = shared[idx_a], shared[idx_b]
                    for channel in range(4):
                        before = previous.market.interference.interferes(
                            channel, previous.row_of(a), previous.row_of(b)
                        )
                        after = epoch.market.interference.interferes(
                            channel, epoch.row_of(a), epoch.row_of(b)
                        )
                        assert before == after
            previous = epoch

    def test_drift_changes_utilities_but_keeps_range(self):
        generator = make_generator(seed=4, drift_sigma=0.2, departure_prob=0.0,
                                   arrival_rate=0.0)
        first = generator.next_epoch()
        second = generator.next_epoch()
        assert not np.array_equal(first.market.utilities, second.market.utilities)
        assert np.all(second.market.utilities >= 0.0)
        assert np.all(second.market.utilities <= 1.0)

    def test_zero_drift_keeps_survivor_utilities(self):
        generator = make_generator(seed=4, drift_sigma=0.0, departure_prob=0.0,
                                   arrival_rate=0.0)
        first = generator.next_epoch()
        second = generator.next_epoch()
        assert np.array_equal(first.market.utilities, second.market.utilities)
