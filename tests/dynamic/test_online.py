"""Tests for online re-matching (warm vs cold)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stability import is_individually_rational, is_nash_stable
from repro.dynamic.generator import DynamicMarketGenerator
from repro.dynamic.online import EpochOutcome, OnlineMatcher, RematchStrategy
from repro.errors import SpectrumMatchingError


def epoch_stream(seed=0, epochs=8, **overrides):
    params = dict(
        num_channels=4,
        initial_buyers=25,
        arrival_rate=4.0,
        departure_prob=0.15,
        drift_sigma=0.05,
        rng=np.random.default_rng(seed),
    )
    params.update(overrides)
    return DynamicMarketGenerator(**params).epochs(epochs)


class TestMatcherMechanics:
    def test_epochs_must_be_ordered(self):
        epochs = epoch_stream(seed=1, epochs=2)
        matcher = OnlineMatcher(RematchStrategy.COLD)
        matcher.step(epochs[1])
        with pytest.raises(SpectrumMatchingError):
            matcher.step(epochs[0])

    def test_first_epoch_reports_no_persistence(self):
        epochs = epoch_stream(seed=2, epochs=1)
        outcome = OnlineMatcher(RematchStrategy.WARM).step(epochs[0])
        assert outcome.persistent == 0
        assert outcome.churned == 0
        assert outcome.churn_rate == 0.0

    def test_warm_falls_back_to_cold_without_history(self):
        epochs = epoch_stream(seed=3, epochs=1)
        warm = OnlineMatcher(RematchStrategy.WARM).step(epochs[0])
        cold = OnlineMatcher(RematchStrategy.COLD).step(epochs[0])
        assert warm.matching == cold.matching

    @pytest.mark.parametrize("strategy", list(RematchStrategy))
    def test_every_epoch_output_feasible_and_stable(self, strategy):
        epochs = epoch_stream(seed=4)
        matcher = OnlineMatcher(strategy)
        for epoch in epochs:
            outcome = matcher.step(epoch)
            market = epoch.market
            assert outcome.matching.is_interference_free(market.interference)
            outcome.matching.assert_consistent()
            assert is_individually_rational(market, outcome.matching)
            assert is_nash_stable(market, outcome.matching)

    def test_welfare_field_matches_matching(self):
        epochs = epoch_stream(seed=5, epochs=3)
        matcher = OnlineMatcher(RematchStrategy.WARM)
        for epoch in epochs:
            outcome = matcher.step(epoch)
            assert outcome.social_welfare == pytest.approx(
                outcome.matching.social_welfare(epoch.market.utilities)
            )


class TestWarmVsCold:
    def run_both(self, seed, epochs=10, **overrides):
        results = {}
        for strategy in RematchStrategy:
            stream = epoch_stream(seed=seed, epochs=epochs, **overrides)
            matcher = OnlineMatcher(strategy)
            results[strategy] = matcher.run(stream)
        return results

    def test_warm_reduces_churn(self):
        results = self.run_both(seed=6)
        cold_churn = sum(o.churned for o in results[RematchStrategy.COLD][1:])
        warm_churn = sum(o.churned for o in results[RematchStrategy.WARM][1:])
        assert warm_churn < cold_churn

    def test_warm_reduces_rounds(self):
        results = self.run_both(seed=7)
        cold_rounds = sum(o.rounds for o in results[RematchStrategy.COLD][1:])
        warm_rounds = sum(o.rounds for o in results[RematchStrategy.WARM][1:])
        assert warm_rounds < cold_rounds

    def test_warm_welfare_stays_competitive(self):
        results = self.run_both(seed=8)
        cold_welfare = sum(
            o.social_welfare for o in results[RematchStrategy.COLD][1:]
        )
        warm_welfare = sum(
            o.social_welfare for o in results[RematchStrategy.WARM][1:]
        )
        assert warm_welfare >= 0.93 * cold_welfare

    def test_static_population_warm_has_zero_churn(self):
        """With no arrivals/departures/drift, warm must never move anyone
        after the first epoch (the seed is already Nash-stable)."""
        results_stream = epoch_stream(
            seed=9, epochs=5, arrival_rate=0.0, departure_prob=0.0,
            drift_sigma=0.0,
        )
        matcher = OnlineMatcher(RematchStrategy.WARM)
        outcomes = matcher.run(results_stream)
        for outcome in outcomes[1:]:
            assert outcome.churned == 0

    def test_incumbents_never_lose_their_channel_under_warm(self):
        """Warm churn is only ever voluntary improvement: a surviving
        matched buyer's utility never decreases between epochs (up to
        drift in her own valuation of the SAME channel)."""
        stream = epoch_stream(seed=10, epochs=8, drift_sigma=0.0)
        matcher = OnlineMatcher(RematchStrategy.WARM)
        previous_assignment = {}
        previous_value = {}
        for epoch in stream:
            outcome = matcher.step(epoch)
            market = epoch.market
            for row, global_id in enumerate(epoch.buyer_ids):
                if global_id in previous_assignment:
                    before = previous_value[global_id]
                    after = outcome.matching.buyer_utility(row, market.utilities)
                    assert after >= before - 1e-9
            previous_assignment = {}
            previous_value = {}
            for row, global_id in enumerate(epoch.buyer_ids):
                channel = outcome.matching.channel_of(row)
                if channel is not None:
                    previous_assignment[global_id] = channel
                    previous_value[global_id] = outcome.matching.buyer_utility(
                        row, market.utilities
                    )
