"""End-to-end live telemetry: server scraped during a real chaos run.

The scraping trick: an event-sink wrapper performs HTTP ``GET`` s from
*inside* the run (whenever chosen ``sim.slot`` events pass through), so
mid-run scrapes land at deterministic points of the protocol while the
telemetry server answers from its own thread.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from typing import Any, Dict, List

import numpy as np
import pytest

from repro.cli import main
from repro.distributed.faults import CrashFault, FaultSchedule
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.transition import default_policy
from repro.obs import (
    MetricsRegistry,
    Recorder,
    RunRegistry,
    SloEngine,
    TelemetryServer,
)
from repro.obs.events import EventSink
from repro.trace.export import parse_openmetrics
from repro.trace.tail import read_events_tolerant
from repro.workloads.scenarios import paper_simulation_market


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read()


class _ScrapingSink(EventSink):
    """Scrape the server whenever selected ``sim.slot`` events pass by."""

    def __init__(self, scrape_slots):
        self.scrape_slots = set(scrape_slots)
        self.url = None  # filled in once the server is up
        self.scrapes: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        if (
            event.get("event") == "sim.slot"
            and event.get("slot") in self.scrape_slots
            and self.url is not None
        ):
            self.scrapes.append(
                {
                    "slot": event["slot"],
                    "metrics": parse_openmetrics(
                        _get(self.url + "/metrics").decode("utf-8")
                    ),
                    "runs": json.loads(_get(self.url + "/runs")),
                    "health": json.loads(_get(self.url + "/health")),
                }
            )


class TestLiveScrapes:
    def test_chaos_run_scraped_during_and_after(self):
        market = paper_simulation_market(8, 3, np.random.default_rng(2))
        sink = _ScrapingSink(scrape_slots={3, 9, 15})
        recorder = Recorder(
            events=sink, metrics=MetricsRegistry(), runs=RunRegistry()
        )
        schedule = FaultSchedule(
            crashes=[CrashFault("buyer:1", crash_slot=4, restart_slot=8)]
        )
        threads_before = set(threading.enumerate())
        with TelemetryServer(recorder) as server:
            sink.url = server.url
            run = run_distributed_matching(
                market,
                policy=default_policy(),
                fault_schedule=schedule,
                recorder=recorder,
            )
            final_metrics = parse_openmetrics(
                _get(server.url + "/metrics").decode("utf-8")
            )
            final_runs = json.loads(_get(server.url + "/runs"))
        assert set(threading.enumerate()) == threads_before

        # Mid-run scrapes happened at the requested slots and saw a
        # *running* distributed run.
        assert [s["slot"] for s in sink.scrapes] == [3, 9, 15]
        for scrape in sink.scrapes:
            (entry,) = scrape["runs"]["runs"]
            assert entry["kind"] == "distributed"
            assert entry["status"] == "running"
            assert scrape["health"]["run"]["kind"] == "distributed"

        # Counters are monotone across scrapes (and into the final one).
        sequence = [s["metrics"] for s in sink.scrapes] + [final_metrics]
        for name in ("sim_slots", "sim_messages_sent", "sim_messages_delivered"):
            values = [snap["counters"].get(name, 0) for snap in sequence]
            assert values == sorted(values), name
            assert values[-1] > 0
        # The crash window is visible mid-run: scrape at slot 9 happens
        # after the slot-4 crash.
        assert sequence[1]["counters"].get("sim_crashes", 0) >= 1

        # After the run the registry reports it finished with the run's
        # actual outcome.
        (entry,) = final_runs["runs"]
        assert entry["status"] == run.status
        assert entry["slot"] == run.slots
        assert entry["welfare"][-1] == pytest.approx(run.social_welfare)

    def test_tight_slo_rule_fires_during_scrape(self):
        market = paper_simulation_market(6, 3, np.random.default_rng(3))
        sink = _ScrapingSink(scrape_slots={5})
        recorder = Recorder(
            events=sink, metrics=MetricsRegistry(), runs=RunRegistry()
        )
        engine = SloEngine(["slots<=1"], recorder, policy="fail")
        with TelemetryServer(recorder, slo_engine=engine) as server:
            sink.url = server.url
            run_distributed_matching(
                market, policy=default_policy(), recorder=recorder
            )
        assert engine.violation_counts == {"slots<=1": 1}
        assert engine.exit_code() == 1
        # The violation flowed back through the recorder into both the
        # event stream and the run registry.
        (entry,) = recorder.runs.snapshot()["runs"]
        assert entry["slo_violations"] == ["slots<=1"]


class TestCliIntegration:
    def test_slo_fail_policy_sets_exit_code_and_traces(self, tmp_path, capsys):
        trace = str(tmp_path / "chaos.jsonl")
        code = main(
            [
                "chaos",
                "--buyers", "6", "--sellers", "3", "--seed", "0",
                "--crash", "buyer:1@3-6",
                "--slo", "slots<=1",
                "--slo-policy", "fail",
                "--trace-out", trace,
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "slo violated: slots<=1" in captured.err
        events, skipped = read_events_tolerant(trace)
        assert skipped == 0
        violated = [e for e in events if e.get("event") == "slo.violated"]
        assert violated and violated[0]["rule"] == "slots<=1"
        assert violated[0]["final"] is True

    def test_slo_warn_policy_keeps_exit_code(self, capsys):
        code = main(
            ["chaos", "--buyers", "6", "--sellers", "3",
             "--slo", "slots<=1", "--slo-policy", "warn"]
        )
        assert code == 0
        assert "slo violated" in capsys.readouterr().err

    def test_satisfied_slo_is_silent(self, capsys):
        code = main(
            ["chaos", "--buyers", "6", "--sellers", "3",
             "--slo", "slots<=10000", "--slo-policy", "fail"]
        )
        assert code == 0
        assert "slo violated" not in capsys.readouterr().err

    def test_welfare_regression_reference_wired_for_chaos(self, capsys):
        # An impossible welfare target: any chaos run "regresses" by less
        # than 200%, so this must NOT violate ...
        code = main(
            ["chaos", "--buyers", "6", "--sellers", "3",
             "--slo", "welfare_regression_pct<=200", "--slo-policy", "fail"]
        )
        assert code == 0
        capsys.readouterr()

    def test_metrics_out_writes_parsable_exposition(self, tmp_path, capsys):
        path = str(tmp_path / "toy.om")
        code = main(["toy", "--metrics-out", path])
        assert code == 0
        assert f"metrics written to {path}" in capsys.readouterr().out
        snapshot = parse_openmetrics(open(path, encoding="utf-8").read())
        assert snapshot["counters"]["stage1_rounds"] >= 1

    def test_bad_slo_rule_is_a_usage_error(self, capsys):
        code = main(["toy", "--slo", "nonsense=="])
        assert code == 2
        assert "bad SLO rule" in capsys.readouterr().err

    def test_serve_metrics_lifecycle_leaves_no_threads(self, capsys):
        threads_before = set(threading.enumerate())
        code = main(["toy", "--serve-metrics", ":0"])
        assert code == 0
        assert set(threading.enumerate()) == threads_before
        assert "telemetry server listening on http://" in capsys.readouterr().err

    def test_every_run_subcommand_has_telemetry_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub_actions = [
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        ]
        run_commands = [
            "fig6", "fig7", "fig8", "toy", "counterexample", "distributed",
            "chaos", "swaps", "dynamic", "report", "solve", "solvers",
        ]
        for name in run_commands:
            sub = sub_actions[0].choices[name]
            flags = {
                option
                for action in sub._actions
                for option in action.option_strings
            }
            for flag in ("--metrics-out", "--serve-metrics", "--slo",
                         "--slo-policy", "--trace-out"):
                assert flag in flags, (name, flag)

    def test_watch_renders_cli_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(["toy", "--trace-out", trace]) == 0
        capsys.readouterr()
        code = main(
            ["watch", trace, "--frames", "1", "--plain", "--interval", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro watch" in out
        assert "two_stage" in out
