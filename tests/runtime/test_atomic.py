"""The shared atomic-write helper: all-or-nothing file replacement."""

from __future__ import annotations

import json
import os

import pytest

from repro.ioutil import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    read_json,
)


class TestAtomicWrite:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"b": 2, "a": [1, 2]})
        assert read_json(path) == {"a": [1, 2], "b": 2}
        assert path.read_text().endswith("\n")

    def test_keys_are_sorted_for_stable_diffs(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"zeta": 1, "alpha": 2})
        text = path.read_text()
        assert text.index('"alpha"') < text.index('"zeta"')

    def test_replace_is_complete_or_nothing(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"version": 1})
        before = path.read_bytes()
        # A non-serialisable payload must raise *before* touching the
        # destination: serialisation happens ahead of the tmp file.
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert path.read_bytes() == before

    def test_no_temporary_droppings(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"version": 1})
        atomic_write_json(path, {"version": 2})
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_write_failure_cleans_up_tmp(self, tmp_path, monkeypatch):
        path = tmp_path / "doc.bin"
        atomic_write_bytes(path, b"old")

        def explode(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"new")
        monkeypatch.undo()
        assert path.read_bytes() == b"old"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.bin"]

    def test_text_helper_encodes_utf8(self, tmp_path):
        path = tmp_path / "note.txt"
        atomic_write_text(path, "welfare ≥ 0\n")
        assert path.read_bytes().decode("utf-8") == "welfare ≥ 0\n"

    def test_creates_file_in_fresh_directory(self, tmp_path):
        target = tmp_path / "nested"
        target.mkdir()
        path = target / "doc.json"
        atomic_write_json(path, [1, 2, 3])
        assert json.loads(path.read_text()) == [1, 2, 3]
