"""The supervised retry runtime: backoff, stall detection, give-up."""

from __future__ import annotations

import sys
import time

import pytest

from repro.errors import RetryBudgetExceeded
from repro.obs import ListEventSink, MetricsRegistry, Recorder
from repro.runtime.supervise import (
    RetryPolicy,
    Supervisor,
    registry_progress_age,
    wal_progress_age,
)

from .conftest import cli_env


@pytest.fixture
def recorder():
    return Recorder(events=ListEventSink(), metrics=MetricsRegistry())


def _events(recorder, event_type):
    return [e for e in recorder.events.events if e["event"] == event_type]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-0.1)

    def test_backoff_grows_exponentially_and_caps(self):
        import random

        policy = RetryPolicy(
            base_backoff_s=1.0, max_backoff_s=5.0, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.backoff_s(a, rng) for a in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_seeded_and_bounded(self):
        import random

        policy = RetryPolicy(base_backoff_s=1.0, jitter=0.5)
        one = [policy.backoff_s(0, random.Random(9)) for _ in range(3)]
        two = [policy.backoff_s(0, random.Random(9)) for _ in range(3)]
        assert one == two  # reproducible schedule
        assert all(1.0 <= d <= 1.5 for d in one)


class TestProgressAges:
    def test_wal_age_is_inf_without_a_wal(self, tmp_path):
        assert wal_progress_age(tmp_path) == float("inf")

    def test_wal_age_tracks_mtime(self, tmp_path):
        (tmp_path / "wal.jsonl").write_text('{"index": 0}\n')
        assert wal_progress_age(tmp_path) < 5.0

    def test_registry_age_is_inf_without_an_active_run(self, recorder):
        assert registry_progress_age(recorder) == float("inf")


class TestRunCallable:
    def test_flaky_callable_retries_to_success(self, recorder):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "done"

        sleeps = []
        supervisor = Supervisor(
            policy=RetryPolicy(max_retries=3, base_backoff_s=0.25),
            recorder=recorder,
            sleep=sleeps.append,
        )
        assert supervisor.run_callable(flaky) == "done"
        assert len(calls) == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential growth
        retries = _events(recorder, "runtime.retry")
        assert [e["attempt"] for e in retries] == [1, 2]
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["runtime.retries"] == 2

    def test_budget_exhaustion_emits_gave_up_and_chains_cause(self, recorder):
        supervisor = Supervisor(
            policy=RetryPolicy(max_retries=1, base_backoff_s=0.0),
            recorder=recorder,
            sleep=lambda _delay: None,
        )

        def always_fails():
            raise ValueError("permanent")

        with pytest.raises(RetryBudgetExceeded) as excinfo:
            supervisor.run_callable(always_fails)
        assert isinstance(excinfo.value.__cause__, ValueError)
        (gave_up,) = _events(recorder, "runtime.gave_up")
        assert gave_up["attempts"] == 2
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["runtime.gave_up"] == 1

    def test_deadline_bounds_total_time(self, recorder):
        supervisor = Supervisor(
            policy=RetryPolicy(max_retries=100, base_backoff_s=0.0),
            recorder=recorder,
            deadline_s=0.2,
            sleep=lambda _delay: time.sleep(0.06),
        )

        def always_fails():
            raise RuntimeError("nope")

        started = time.monotonic()
        with pytest.raises(RetryBudgetExceeded, match="deadline"):
            supervisor.run_callable(always_fails)
        assert time.monotonic() - started < 5.0


class TestRunCommand:
    def test_failing_command_exhausts_budget(self, recorder):
        supervisor = Supervisor(
            policy=RetryPolicy(max_retries=1, base_backoff_s=0.0, jitter=0.0),
            recorder=recorder,
        )
        with pytest.raises(RetryBudgetExceeded, match="exit code 3"):
            supervisor.run_command(
                [sys.executable, "-c", "raise SystemExit(3)"]
            )
        assert [h["outcome"] for h in supervisor.history] == ["exit", "exit"]

    def test_succeeding_command_returns_zero(self, recorder):
        supervisor = Supervisor(recorder=recorder)
        assert supervisor.run_command([sys.executable, "-c", "pass"]) == 0
        assert supervisor.history[0]["outcome"] == "exit"

    def test_stalled_child_is_killed_and_resumed(
        self, recorder, tmp_path, monkeypatch
    ):
        """End-to-end: stall -> SIGKILL -> resume from checkpoint -> done."""
        monkeypatch.setenv("PYTHONPATH", cli_env()["PYTHONPATH"])
        run_dir = tmp_path / "run"
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "chaos",
            "--buyers",
            "8",
            "--sellers",
            "3",
            "--seed",
            "3",
            "--loss",
            "0.1",
            "--checkpoint-dir",
            str(run_dir),
            "--checkpoint-every",
            "5",
            "--inject-stall-after",
            "10",
        ]
        supervisor = Supervisor(
            policy=RetryPolicy(max_retries=2, base_backoff_s=0.1, jitter=0.0),
            recorder=recorder,
            stall_timeout_s=2.0,
            deadline_s=90.0,
            poll_interval_s=0.1,
        )
        assert supervisor.run_command(command, run_dir=run_dir) == 0
        outcomes = [h["outcome"] for h in supervisor.history]
        assert outcomes[0] == "stall"
        assert outcomes[-1] == "exit"
        # The retry relaunched as `repro resume`, not the stalling command.
        assert "resume" in supervisor.history[-1]["command"]
        assert (run_dir / "result.json").exists()
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["runtime.stalls"] >= 1
        assert counters["runtime.retries"] >= 1
        (retry,) = _events(recorder, "runtime.retry")
        assert retry["resumable"] is True
