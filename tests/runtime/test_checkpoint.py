"""The checkpoint store: WAL semantics, snapshot validation, staleness."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import CheckpointStore, config_hash

CONFIG = {"buyers": 4, "sellers": 2, "seed": 7}


@pytest.fixture
def store(tmp_path):
    return CheckpointStore.create(
        tmp_path / "run", kind="chaos", seed=7, config=CONFIG
    )


class TestManifest:
    def test_create_then_open_roundtrip(self, store):
        reopened = CheckpointStore.open(store.run_dir)
        assert reopened.kind == "chaos"
        assert reopened.seed == 7
        assert reopened.config == CONFIG
        assert reopened.config_hash == config_hash(CONFIG)

    def test_open_refuses_non_run_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="not a durable run"):
            CheckpointStore.open(tmp_path)

    def test_open_refuses_edited_manifest(self, store):
        manifest = json.loads(store.manifest_path.read_text())
        manifest["config"]["buyers"] = 99  # tamper without re-hashing
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="config hash"):
            CheckpointStore.open(store.run_dir)

    def test_create_refuses_foreign_directory(self, store):
        with pytest.raises(CheckpointError, match="different"):
            CheckpointStore.create(
                store.run_dir, kind="chaos", seed=7, config={"other": True}
            )

    def test_recreate_same_config_restarts_from_scratch(self, store):
        with store.open_wal() as wal:
            store.append_wal(wal, {"index": 0})
        store.write_checkpoint(1, {"x": 1}, trace_bytes=0, wal_records=1)
        store.write_result({"done": True})
        fresh = CheckpointStore.create(
            store.run_dir, kind="chaos", seed=7, config=CONFIG
        )
        assert fresh.read_wal() == ([], 0)
        assert fresh.latest_checkpoint() is None
        assert not fresh.completed


class TestWal:
    def test_append_and_read(self, store):
        with store.open_wal() as wal:
            for index in range(3):
                store.append_wal(wal, {"index": index})
        records, valid = store.read_wal()
        assert [r["index"] for r in records] == [0, 1, 2]
        assert valid == store.wal_path.stat().st_size

    def test_torn_tail_is_dropped_and_repairable(self, store):
        with store.open_wal() as wal:
            store.append_wal(wal, {"index": 0})
            store.append_wal(wal, {"index": 1})
        intact = store.wal_path.stat().st_size
        with open(store.wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "torn')  # crash mid-append
        records, valid = store.read_wal()
        assert [r["index"] for r in records] == [0, 1]
        assert valid == intact
        store.truncate_wal(valid)
        assert store.wal_path.stat().st_size == intact

    def test_mid_file_corruption_raises(self, store):
        store.wal_path.write_text('{"index": 0}\nnot json\n{"index": 2}\n')
        with pytest.raises(CheckpointError, match="corrupt WAL"):
            store.read_wal()


class TestCheckpoints:
    def test_json_codec_roundtrip(self, store):
        state = {"cursor": 5, "rng": [1, 2, 3]}
        store.write_checkpoint(5, state, trace_bytes=120, wal_records=5)
        loaded = store.latest_checkpoint()
        assert loaded["state"] == state
        assert loaded["wal_records"] == 5
        assert loaded["trace_bytes"] == 120

    def test_pickle_codec_roundtrip(self, store):
        state = {"objects": (1.5, {"nested": [None, True]})}
        store.write_checkpoint(
            3, state, trace_bytes=0, wal_records=3, codec="pickle"
        )
        assert store.latest_checkpoint()["state"] == state

    def test_unknown_codec_rejected(self, store):
        with pytest.raises(CheckpointError, match="codec"):
            store.write_checkpoint(
                1, {}, trace_bytes=0, wal_records=1, codec="yaml"
            )

    def test_truncated_snapshot_falls_back_to_older_valid_one(self, store):
        store.write_checkpoint(3, {"cursor": 3}, trace_bytes=0, wal_records=3)
        newest = store.write_checkpoint(
            6, {"cursor": 6}, trace_bytes=0, wal_records=6
        )
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])  # crash left half a file
        loaded = store.latest_checkpoint()
        assert loaded["state"] == {"cursor": 3}

    def test_bit_flip_is_detected_by_digest(self, store):
        path = store.write_checkpoint(
            2, {"cursor": 2}, trace_bytes=0, wal_records=2
        )
        payload = json.loads(path.read_text())
        payload["state"]["cursor"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="digest"):
            store.load_checkpoint(path)
        assert store.latest_checkpoint() is None  # skipped, nothing older

    def test_stale_config_hash_raises_clearly(self, store, tmp_path):
        other = CheckpointStore.create(
            tmp_path / "other",
            kind="chaos",
            seed=7,
            config={**CONFIG, "buyers": 40},
        )
        foreign = other.write_checkpoint(
            4, {"cursor": 4}, trace_bytes=0, wal_records=4
        )
        shutil.copy(foreign, store.checkpoint_dir / foreign.name)
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            store.load_checkpoint(store.checkpoint_dir / foreign.name)
        # latest_checkpoint must NOT silently fall back past a foreign
        # snapshot: the whole directory is suspect.
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            store.latest_checkpoint()

    def test_no_checkpoints_returns_none(self, store):
        assert store.latest_checkpoint() is None


class TestResultAndTrace:
    def test_result_is_the_commit_point(self, store):
        assert not store.completed
        store.write_result({"welfare": 12.5})
        assert store.completed
        assert store.read_result() == {"welfare": 12.5}

    def test_truncate_trace_rejects_foreign_offsets(self, store):
        store.trace_path.write_text("line one\n")
        with pytest.raises(CheckpointError, match="shorter"):
            store.truncate_trace(10_000)

    def test_truncate_trace_cuts_to_offset(self, store):
        store.trace_path.write_text("abcdef")
        store.truncate_trace(3)
        assert store.trace_path.read_text() == "abc"
