"""Crash-consistent resume of distributed chaos runs.

Harder than the dynamic case: the checkpoint must capture mid-protocol
simulator state -- in-flight frames, ARQ retransmission buffers (with
their causal ids), crash/restart schedules, partition state and per-slot
RNG position -- and the resumed process must regenerate the exact
remaining trace, message ids included.
"""

from __future__ import annotations

import random

import pytest

from repro.trace.diff import diff_traces
from repro.trace.reader import load_events

from .conftest import run_cli, sigkill, spawn_cli, wait_for_wal


def _chaos_args(run_dir, seed: int):
    return (
        "chaos",
        "--buyers",
        "10",
        "--sellers",
        "3",
        "--seed",
        str(seed),
        "--loss",
        "0.12",
        "--crash",
        "buyer:2@6-12",
        "--checkpoint-dir",
        str(run_dir),
        "--checkpoint-every",
        "10",
    )


@pytest.mark.parametrize("case_seed", [0, 1])
def test_sigkill_mid_protocol_then_resume_is_byte_identical(
    tmp_path, case_seed
):
    kill_after = random.Random(100 + case_seed).randint(8, 25)
    golden = tmp_path / "golden"
    victim = tmp_path / "victim"
    run_cli(*_chaos_args(golden, seed=3))

    proc = spawn_cli(
        *_chaos_args(victim, seed=3),
        "--inject-stall-after",
        str(kill_after),
    )
    try:
        wait_for_wal(victim, kill_after)
    finally:
        sigkill(proc)
    assert not (victim / "result.json").exists()

    run_cli("resume", str(victim))

    assert (victim / "result.json").read_bytes() == (
        golden / "result.json"
    ).read_bytes()
    diff = diff_traces(
        load_events(str(golden / "trace.jsonl")),
        load_events(str(victim / "trace.jsonl")),
    )
    assert not diff.diverged


def test_resume_rejects_stall_injection(tmp_path):
    run_dir = tmp_path / "run"
    proc = spawn_cli(
        *_chaos_args(run_dir, seed=3), "--inject-stall-after", "5"
    )
    try:
        wait_for_wal(run_dir, 5)
    finally:
        sigkill(proc)
    # The flag only makes sense when starting a run; a resume carrying
    # it would stall forever in CI for no diagnostic value.
    result = run_cli("resume", str(run_dir), "--inject-stall-after", "5",
                     check=False)
    assert result.returncode == 2
