"""Crash-consistent resume of dynamic-market runs.

The contract under test: a seeded durable run SIGKILLed at an arbitrary
epoch and resumed produces a final result and behavioural trace
*identical* to the uninterrupted run's -- not merely statistically
similar.  The kill point is chosen by a seeded PRNG per case, so the
suite probes different epochs without losing reproducibility.
"""

from __future__ import annotations

import random

import pytest

from repro.trace.diff import diff_traces
from repro.trace.reader import load_events

from .conftest import run_cli, sigkill, spawn_cli, wait_for_wal

EPOCHS = 8


def _dynamic_args(run_dir, seed: int):
    return (
        "dynamic",
        "--strategy",
        "warm",
        "--epochs",
        str(EPOCHS),
        "--buyers",
        "6",
        "--sellers",
        "3",
        "--seed",
        str(seed),
        "--checkpoint-dir",
        str(run_dir),
        "--checkpoint-every",
        "3",
    )


@pytest.mark.parametrize("case_seed", [0, 1])
def test_sigkill_then_resume_is_byte_identical(tmp_path, case_seed):
    kill_after = random.Random(case_seed).randint(2, EPOCHS - 1)
    golden = tmp_path / "golden"
    victim = tmp_path / "victim"
    run_cli(*_dynamic_args(golden, seed=11))

    proc = spawn_cli(
        *_dynamic_args(victim, seed=11),
        "--inject-stall-after",
        str(kill_after),
    )
    try:
        wait_for_wal(victim, kill_after)
    finally:
        sigkill(proc)
    assert not (victim / "result.json").exists()

    run_cli("resume", str(victim))

    assert (victim / "result.json").read_bytes() == (
        golden / "result.json"
    ).read_bytes()
    diff = diff_traces(
        load_events(str(golden / "trace.jsonl")),
        load_events(str(victim / "trace.jsonl")),
    )
    assert not diff.diverged


def test_resume_of_completed_run_is_idempotent(tmp_path):
    run_dir = tmp_path / "run"
    first = run_cli(*_dynamic_args(run_dir, seed=5))
    before = (run_dir / "result.json").read_bytes()
    second = run_cli("resume", str(run_dir))
    assert (run_dir / "result.json").read_bytes() == before
    assert first.stdout.splitlines()[-1] == second.stdout.splitlines()[-1]


def test_resume_without_checkpoint_restarts_from_scratch(tmp_path):
    golden = tmp_path / "golden"
    victim = tmp_path / "victim"
    run_cli(*_dynamic_args(golden, seed=11))

    proc = spawn_cli(
        *_dynamic_args(victim, seed=11), "--inject-stall-after", "2"
    )
    try:
        wait_for_wal(victim, 2)
    finally:
        sigkill(proc)
    # Destroy every snapshot: resume must fall back to a clean restart
    # and still converge to the identical result.
    for snapshot in (victim / "checkpoints").glob("ckpt-*.json"):
        snapshot.unlink()
    run_cli("resume", str(victim))
    assert (victim / "result.json").read_bytes() == (
        golden / "result.json"
    ).read_bytes()


def test_resume_refuses_non_run_directory(tmp_path):
    result = run_cli("resume", str(tmp_path), check=False)
    assert result.returncode == 2
    assert "not a durable run" in result.stderr
