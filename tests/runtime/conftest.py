"""Shared helpers for the durable-runtime tests.

The crash tests run the real CLI in a subprocess, SIGKILL it at a
deterministic point (``--inject-stall-after`` parks the run after N
committed WAL records, so the kill lands at a known logical time), then
resume and compare against an uninterrupted golden run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional

import pytest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(*args: str, check: bool = True) -> "subprocess.CompletedProcess":
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=cli_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    if check and result.returncode != 0:
        raise AssertionError(
            f"repro {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}\n{result.stderr}"
        )
    return result


def spawn_cli(*args: str) -> "subprocess.Popen":
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=cli_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_wal(run_dir: Path, records: int, timeout_s: float = 60.0) -> None:
    """Block until the run's WAL holds at least ``records`` lines."""
    wal = Path(run_dir) / "wal.jsonl"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if wal.read_text().count("\n") >= records:
                return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError(f"{wal} never reached {records} records")


def sigkill(proc: "subprocess.Popen") -> None:
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
