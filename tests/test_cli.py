"""Tests for the command-line interface."""

from __future__ import annotations

import collections
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.panel == "a"
        assert args.repetitions is None

    def test_distributed_options(self):
        args = build_parser().parse_args(
            ["distributed", "--buyers", "12", "--policy", "adaptive"]
        )
        assert args.buyers == 12
        assert args.policy == "adaptive"


class TestCommands:
    def test_toy_output(self, capsys):
        assert main(["toy"]) == 0
        out = capsys.readouterr().out
        assert "Stage I welfare: 27" in out
        assert "Final welfare: 30" in out

    def test_counterexample_output(self, capsys):
        assert main(["counterexample"]) == 0
        out = capsys.readouterr().out
        assert "Nash-stable:      True" in out
        assert "pairwise-stable:  False" in out
        assert "blocking pair" in out

    def test_fig6_table(self, capsys):
        assert main(["fig6", "--panel", "a", "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "welfare_ratio" in out
        assert "Fig. 6(a)" in out

    def test_fig6_csv(self, capsys):
        assert main(["fig6", "--panel", "a", "--repetitions", "2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("buyers,measured_srcc")

    def test_distributed_command(self, capsys):
        assert (
            main(
                [
                    "distributed",
                    "--buyers",
                    "8",
                    "--sellers",
                    "3",
                    "--policy",
                    "both",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "default" in out
        assert "adaptive" in out
        assert "matches centralized: True" in out


class TestExtensionCommands:
    def test_swaps_counterexample(self, capsys):
        assert main(["swaps", "--counterexample"]) == 0
        out = capsys.readouterr().out
        assert "23.0000" in out
        assert "27.0000" in out
        assert "pairwise-stable after: True" in out

    def test_swaps_random_market(self, capsys):
        assert main(["swaps", "--buyers", "10", "--sellers", "3"]) == 0
        out = capsys.readouterr().out
        assert "two-stage welfare" in out

    def test_dynamic_command(self, capsys):
        assert main(["dynamic", "--epochs", "4", "--buyers", "15"]) == 0
        out = capsys.readouterr().out
        assert "cold" in out
        assert "warm" in out

    def test_distributed_with_loss(self, capsys):
        assert (
            main(
                [
                    "distributed",
                    "--buyers", "8",
                    "--sellers", "3",
                    "--policy", "default",
                    "--loss", "0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ARQ transport enabled" in out
        assert "matches centralized: True" in out

    def test_report_command(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "replication report" in out
        assert "FAIL" not in out
        assert out.count("PASS") == 8


class TestChaosCommand:
    def test_crash_spec_parsing(self):
        from repro.distributed.faults import RestartMode

        args = build_parser().parse_args(
            ["chaos", "--crash", "buyer:3@10-25/amnesia",
             "--crash", "seller:1@8"]
        )
        first, second = args.crash
        assert first.agent_id == "buyer:3"
        assert (first.crash_slot, first.restart_slot) == (10, 25)
        assert first.mode is RestartMode.AMNESIA
        assert second.restart_slot is None
        assert second.mode is RestartMode.CHECKPOINT

    def test_partition_spec_parsing(self):
        args = build_parser().parse_args(
            ["chaos", "--partition", "buyer:0,buyer:1|rest@5-20"]
        )
        fault = args.partition[0]
        assert fault.groups == (frozenset({"buyer:0", "buyer:1"}),)
        assert (fault.start_slot, fault.end_slot) == (5, 20)

    def test_bad_specs_rejected(self, capsys):
        for bad in ["buyer:0", "buyer:0@x", "buyer:0@5-2", "a@3/sleepy"]:
            with pytest.raises(SystemExit):
                build_parser().parse_args(["chaos", "--crash", bad])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--partition", "a,b"])
        capsys.readouterr()  # swallow argparse usage noise

    def test_crash_recovery_run(self, capsys):
        assert (
            main(
                ["chaos", "--buyers", "10", "--sellers", "3", "--seed", "1",
                 "--loss", "0.2",
                 "--crash", "buyer:0@5-12",
                 "--crash", "buyer:3@6-14",
                 "--crash", "seller:1@7-15"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "status=converged" in out
        assert "crashes=3 restarts=3" in out
        assert "matches fault-free outcome: True" in out

    def test_degraded_partition_run(self, capsys):
        buyers = ",".join(f"buyer:{j}" for j in range(10))
        assert (
            main(
                ["chaos", "--partition", f"{buyers}|rest@4",
                 "--deadline-slots", "150", "--on-timeout", "degrade"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "status=degraded" in out
        assert "partition_drops=" in out

    def test_timeout_raise_reports_failure(self, capsys):
        buyers = ",".join(f"buyer:{j}" for j in range(10))
        assert (
            main(
                ["chaos", "--partition", f"{buyers}|rest@4",
                 "--deadline-slots", "150", "--on-timeout", "raise"]
            )
            == 1
        )
        assert "run aborted" in capsys.readouterr().out

    def test_trace_contains_fault_events(self, tmp_path, capsys):
        path = tmp_path / "chaos.jsonl"
        assert (
            main(
                ["chaos", "--buyers", "8", "--sellers", "3",
                 "--crash", "buyer:2@3-9", "--trace-out", str(path)]
            )
            == 0
        )
        capsys.readouterr()
        kinds = collections.Counter(
            json.loads(line).get("event") for line in path.read_text().splitlines()
        )
        assert kinds["sim.crash"] == 1
        assert kinds["sim.restart"] == 1
        assert kinds["sim.fault_summary"] == 1


class TestObservabilityFlags:
    def test_every_subcommand_accepts_trace_flags(self):
        parser = build_parser()
        for command in ["toy", "counterexample", "fig6", "distributed",
                        "chaos", "swaps", "dynamic", "report"]:
            args = parser.parse_args([command, "--trace-out", "x.jsonl",
                                      "--metrics"])
            assert args.trace_out == "x.jsonl"
            assert args.metrics is True

    def test_toy_trace_out_writes_valid_jsonl(self, tmp_path, capsys):
        path = tmp_path / "toy.jsonl"
        assert main(["toy", "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out

        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]  # all valid JSON
        assert events[0]["event"] == "manifest"
        assert "versions" in events[0]

        counts = collections.Counter(e["event"] for e in events)
        # The toy run records the market and every algorithm round.
        assert counts["market.created"] == 1
        assert counts["stage1.round"] >= 1
        assert counts["stage2.transfer_round"] >= 1
        assert counts["two_stage.result"] == 1

    def test_toy_trace_round_counts_match_result(self, tmp_path, capsys):
        from repro.core.two_stage import run_two_stage
        from repro.workloads.scenarios import toy_example_market

        path = tmp_path / "toy.jsonl"
        assert main(["toy", "--trace-out", str(path)]) == 0
        capsys.readouterr()
        counts = collections.Counter(
            json.loads(line)["event"]
            for line in path.read_text().splitlines()
        )
        result = run_two_stage(toy_example_market())
        assert counts["stage1.round"] == result.rounds_stage1
        assert counts["stage2.transfer_round"] == result.rounds_phase1
        assert counts["stage2.invitation_round"] == result.rounds_phase2

    def test_metrics_flag_prints_summary(self, capsys):
        assert main(["toy", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "-- observability summary --" in out
        assert "stage1.rounds" in out
        assert "two_stage" in out

    def test_distributed_trace_has_slot_events(self, tmp_path, capsys):
        path = tmp_path / "dist.jsonl"
        assert (
            main(
                ["distributed", "--buyers", "6", "--sellers", "2",
                 "--policy", "default", "--trace-out", str(path)]
            )
            == 0
        )
        capsys.readouterr()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        counts = collections.Counter(e["event"] for e in events)
        assert counts["distributed.run_start"] == 1
        assert counts["sim.slot"] >= 1
        assert counts["sim.done"] == 1
        assert counts["distributed.run_end"] == 1

    def test_output_identical_without_flags(self, capsys):
        assert main(["toy"]) == 0
        plain = capsys.readouterr().out
        assert "observability summary" not in plain
        assert "trace written" not in plain


class TestSolverCommands:
    def test_solvers_list_shows_all_backends(self, capsys):
        assert main(["solvers", "list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "two_stage", "bruteforce", "branch_and_bound", "greedy",
            "lp_bound", "random", "college_admission", "nash_enumeration",
            "mcafee", "distributed",
        ):
            assert name in out
        assert "[heuristic]" in out
        assert "[bound_only]" in out

    def test_solvers_list_capability_filter(self, capsys):
        assert main(["solvers", "list", "--capability", "exact"]) == 0
        out = capsys.readouterr().out
        assert "bruteforce" in out
        assert "two_stage" not in out

    def test_solve_two_stage_toy(self, capsys):
        assert (
            main(["solve", "--solver", "two_stage", "--scenario", "toy",
                  "--check-stability"])
            == 0
        )
        out = capsys.readouterr().out
        assert "solver: two_stage [heuristic]" in out
        assert "welfare: 30.0000" in out
        assert "nash=True" in out
        assert "welfare_stage1=27.0" in out

    def test_solve_bound_solver(self, capsys):
        assert main(["solve", "--solver", "lp_bound", "--scenario", "toy"]) == 0
        out = capsys.readouterr().out
        assert "bound:  33.0000 (no matching produced)" in out

    def test_solve_typed_config(self, capsys):
        assert (
            main(["solve", "--solver", "college_admission", "--scenario", "toy",
                  "--config", "quota=2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "quota=2" in out

    def test_solve_unknown_solver_fails_actionably(self, capsys):
        assert main(["solve", "--solver", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown solver 'nope'" in err
        assert "two_stage" in err

    def test_solve_unknown_config_key_fails(self, capsys):
        assert main(["solve", "--solver", "greedy", "--scenario", "toy",
                     "--config", "quota=2"]) == 2
        err = capsys.readouterr().err
        assert "unknown config key" in err


class TestTraceCommands:
    """The offline `repro trace` family, end to end through main()."""

    @pytest.fixture()
    def recorded(self, tmp_path):
        """Two same-seed distributed traces plus a different-seed third."""
        paths = {}
        for name, seed in (("a", 9), ("b", 9), ("c", 10)):
            path = tmp_path / f"{name}.jsonl"
            assert (
                main(
                    [
                        "distributed",
                        "--buyers", "8",
                        "--sellers", "2",
                        "--seed", str(seed),
                        "--trace-out", str(path),
                    ]
                )
                == 0
            )
            paths[name] = str(path)
        return paths

    def test_summarize(self, recorded, capsys):
        assert main(["trace", "summarize", recorded["a"]]) == 0
        out = capsys.readouterr().out
        assert "manifest: schema v1, seed 9" in out
        assert "to convergence" in out
        assert "messages: sent=" in out

    def test_diff_same_seed_is_clean_exit_zero(self, recorded, capsys):
        assert main(["trace", "diff", recorded["a"], recorded["b"]]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_diff_different_seed_diverges_exit_one(self, recorded, capsys):
        assert main(["trace", "diff", recorded["a"], recorded["c"]]) == 1
        out = capsys.readouterr().out
        assert "divergence at canonical event" in out

    def test_export_chrome_is_loadable_json(self, recorded, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert (
            main(
                [
                    "trace", "export", recorded["a"],
                    "--format", "chrome", "--output", str(target),
                ]
            )
            == 0
        )
        document = json.loads(target.read_text())
        phases = {e["ph"] for e in document["traceEvents"]}
        assert "i" in phases  # message instants made it across

    def test_export_openmetrics_to_stdout(self, recorded, capsys):
        assert (
            main(["trace", "export", recorded["a"], "--format", "openmetrics"])
            == 0
        )
        out = capsys.readouterr().out
        assert "# EOF" in out
        assert "trace_events_msg_sent_total" in out

    def test_causality_prints_chains(self, recorded, capsys):
        assert (
            main(["trace", "causality", recorded["a"], "--agent", "seller:0"])
            == 0
        )
        out = capsys.readouterr().out
        assert "traced messages" in out
        assert "seller:0" in out
        assert "delivered" in out

    def test_missing_file_is_actionable_exit_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", "summarize", missing]) == 2
        assert "nope.jsonl" in capsys.readouterr().err

    def test_corrupt_trace_reports_line_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "ok"}\n{broken\n')
        assert main(["trace", "summarize", str(bad)]) == 2
        assert ":2:" in capsys.readouterr().err

    def test_solve_trace_out_works_for_registry_backends(self, tmp_path, capsys):
        path = tmp_path / "greedy.jsonl"
        assert (
            main(
                [
                    "solve", "--solver", "greedy",
                    "--buyers", "8", "--sellers", "2", "--seed", "1",
                    "--trace-out", str(path),
                ]
            )
            == 0
        )
        assert f"trace: {path}" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["event"] == "manifest"
        assert any(
            json.loads(line)["event"] == "span"
            and json.loads(line)["name"] == "solve.greedy"
            for line in lines[1:]
        )

    def test_trace_flush_every_output_identical(self, tmp_path):
        outputs = []
        for flush_every, name in ((1, "w.jsonl"), (64, "b.jsonl")):
            path = tmp_path / name
            assert (
                main(
                    [
                        "distributed",
                        "--buyers", "8", "--sellers", "2", "--seed", "3",
                        "--trace-out", str(path),
                        "--trace-flush-every", str(flush_every),
                    ]
                )
                == 0
            )
            outputs.append(str(path))
        # Behaviourally identical (timings and the manifest timestamp
        # legitimately differ): the trace toolkit's own diff must be clean.
        assert main(["trace", "diff", outputs[0], outputs[1]]) == 0


class TestProfileCommands:
    """The `repro profile` family and --profile-out, through main()."""

    @pytest.fixture()
    def profiled(self, tmp_path, capsys):
        """Two same-seed toy profiles captured via --profile-out."""
        paths = {}
        for name in ("a", "b"):
            path = tmp_path / name
            assert main(["toy", "--profile-out", str(path)]) == 0
            paths[name] = str(path)
        out = capsys.readouterr().out
        assert f"profile written to {paths['a']}" in out
        return paths

    def test_top_names_the_dominant_phase(self, profiled, capsys):
        assert main(["profile", "top", profiled["a"]]) == 0
        out = capsys.readouterr().out
        assert "stage1.mwis" in out

    def test_top_rejects_unknown_section(self, profiled, capsys):
        assert (
            main(["profile", "top", profiled["a"], "--section", "spans"])
            == 0
        )
        capsys.readouterr()
        assert main(["profile", "top", str(profiled["a"]) + "-nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_same_seed_exit_zero(self, profiled, capsys):
        assert main(["profile", "diff", profiled["a"], profiled["b"]]) == 0
        assert "counters identical" in capsys.readouterr().out

    def test_diff_missing_path_exit_two(self, profiled, tmp_path, capsys):
        missing = str(tmp_path / "gone")
        assert main(["profile", "diff", profiled["a"], missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_export_collapsed_stacks(self, tmp_path, capsys):
        trace = tmp_path / "toy.jsonl"
        assert main(["toy", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert (
            main(["trace", "export", str(trace), "--format", "collapsed"])
            == 0
        )
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            stack, _, value = line.rpartition(" ")
            assert stack and value.isdigit(), line
        assert any("stage1.mwis" in line for line in out.splitlines())

    def test_export_speedscope_is_loadable(self, tmp_path, capsys):
        trace = tmp_path / "toy.jsonl"
        assert main(["toy", "--trace-out", str(trace)]) == 0
        target = tmp_path / "prof.speedscope.json"
        assert (
            main(
                [
                    "trace", "export", str(trace),
                    "--format", "speedscope", "--output", str(target),
                ]
            )
            == 0
        )
        document = json.loads(target.read_text())
        assert "speedscope" in document["$schema"]
        assert document["profiles"][0]["type"] == "evented"
