"""Tests for the command-line interface."""

from __future__ import annotations

import collections
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.panel == "a"
        assert args.repetitions is None

    def test_distributed_options(self):
        args = build_parser().parse_args(
            ["distributed", "--buyers", "12", "--policy", "adaptive"]
        )
        assert args.buyers == 12
        assert args.policy == "adaptive"


class TestCommands:
    def test_toy_output(self, capsys):
        assert main(["toy"]) == 0
        out = capsys.readouterr().out
        assert "Stage I welfare: 27" in out
        assert "Final welfare: 30" in out

    def test_counterexample_output(self, capsys):
        assert main(["counterexample"]) == 0
        out = capsys.readouterr().out
        assert "Nash-stable:      True" in out
        assert "pairwise-stable:  False" in out
        assert "blocking pair" in out

    def test_fig6_table(self, capsys):
        assert main(["fig6", "--panel", "a", "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "welfare_ratio" in out
        assert "Fig. 6(a)" in out

    def test_fig6_csv(self, capsys):
        assert main(["fig6", "--panel", "a", "--repetitions", "2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("buyers,measured_srcc")

    def test_distributed_command(self, capsys):
        assert (
            main(
                [
                    "distributed",
                    "--buyers",
                    "8",
                    "--sellers",
                    "3",
                    "--policy",
                    "both",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "default" in out
        assert "adaptive" in out
        assert "matches centralized: True" in out


class TestExtensionCommands:
    def test_swaps_counterexample(self, capsys):
        assert main(["swaps", "--counterexample"]) == 0
        out = capsys.readouterr().out
        assert "23.0000" in out
        assert "27.0000" in out
        assert "pairwise-stable after: True" in out

    def test_swaps_random_market(self, capsys):
        assert main(["swaps", "--buyers", "10", "--sellers", "3"]) == 0
        out = capsys.readouterr().out
        assert "two-stage welfare" in out

    def test_dynamic_command(self, capsys):
        assert main(["dynamic", "--epochs", "4", "--buyers", "15"]) == 0
        out = capsys.readouterr().out
        assert "cold" in out
        assert "warm" in out

    def test_distributed_with_loss(self, capsys):
        assert (
            main(
                [
                    "distributed",
                    "--buyers", "8",
                    "--sellers", "3",
                    "--policy", "default",
                    "--loss", "0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ARQ transport enabled" in out
        assert "matches centralized: True" in out

    def test_report_command(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "replication report" in out
        assert "FAIL" not in out
        assert out.count("PASS") == 8


class TestObservabilityFlags:
    def test_every_subcommand_accepts_trace_flags(self):
        parser = build_parser()
        for command in ["toy", "counterexample", "fig6", "distributed",
                        "swaps", "dynamic", "report"]:
            args = parser.parse_args([command, "--trace-out", "x.jsonl",
                                      "--metrics"])
            assert args.trace_out == "x.jsonl"
            assert args.metrics is True

    def test_toy_trace_out_writes_valid_jsonl(self, tmp_path, capsys):
        path = tmp_path / "toy.jsonl"
        assert main(["toy", "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out

        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]  # all valid JSON
        assert events[0]["event"] == "manifest"
        assert "versions" in events[0]

        counts = collections.Counter(e["event"] for e in events)
        # The toy run records the market and every algorithm round.
        assert counts["market.created"] == 1
        assert counts["stage1.round"] >= 1
        assert counts["stage2.transfer_round"] >= 1
        assert counts["two_stage.result"] == 1

    def test_toy_trace_round_counts_match_result(self, tmp_path, capsys):
        from repro.core.two_stage import run_two_stage
        from repro.workloads.scenarios import toy_example_market

        path = tmp_path / "toy.jsonl"
        assert main(["toy", "--trace-out", str(path)]) == 0
        capsys.readouterr()
        counts = collections.Counter(
            json.loads(line)["event"]
            for line in path.read_text().splitlines()
        )
        result = run_two_stage(toy_example_market())
        assert counts["stage1.round"] == result.rounds_stage1
        assert counts["stage2.transfer_round"] == result.rounds_phase1
        assert counts["stage2.invitation_round"] == result.rounds_phase2

    def test_metrics_flag_prints_summary(self, capsys):
        assert main(["toy", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "-- observability summary --" in out
        assert "stage1.rounds" in out
        assert "two_stage" in out

    def test_distributed_trace_has_slot_events(self, tmp_path, capsys):
        path = tmp_path / "dist.jsonl"
        assert (
            main(
                ["distributed", "--buyers", "6", "--sellers", "2",
                 "--policy", "default", "--trace-out", str(path)]
            )
            == 0
        )
        capsys.readouterr()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        counts = collections.Counter(e["event"] for e in events)
        assert counts["distributed.run_start"] == 1
        assert counts["sim.slot"] >= 1
        assert counts["sim.done"] == 1
        assert counts["distributed.run_end"] == 1

    def test_output_identical_without_flags(self, capsys):
        assert main(["toy"]) == 0
        plain = capsys.readouterr().out
        assert "observability summary" not in plain
        assert "trace written" not in plain
