"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.panel == "a"
        assert args.repetitions is None

    def test_distributed_options(self):
        args = build_parser().parse_args(
            ["distributed", "--buyers", "12", "--policy", "adaptive"]
        )
        assert args.buyers == 12
        assert args.policy == "adaptive"


class TestCommands:
    def test_toy_output(self, capsys):
        assert main(["toy"]) == 0
        out = capsys.readouterr().out
        assert "Stage I welfare: 27" in out
        assert "Final welfare: 30" in out

    def test_counterexample_output(self, capsys):
        assert main(["counterexample"]) == 0
        out = capsys.readouterr().out
        assert "Nash-stable:      True" in out
        assert "pairwise-stable:  False" in out
        assert "blocking pair" in out

    def test_fig6_table(self, capsys):
        assert main(["fig6", "--panel", "a", "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "welfare_ratio" in out
        assert "Fig. 6(a)" in out

    def test_fig6_csv(self, capsys):
        assert main(["fig6", "--panel", "a", "--repetitions", "2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("buyers,measured_srcc")

    def test_distributed_command(self, capsys):
        assert (
            main(
                [
                    "distributed",
                    "--buyers",
                    "8",
                    "--sellers",
                    "3",
                    "--policy",
                    "both",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "default" in out
        assert "adaptive" in out
        assert "matches centralized: True" in out


class TestExtensionCommands:
    def test_swaps_counterexample(self, capsys):
        assert main(["swaps", "--counterexample"]) == 0
        out = capsys.readouterr().out
        assert "23.0000" in out
        assert "27.0000" in out
        assert "pairwise-stable after: True" in out

    def test_swaps_random_market(self, capsys):
        assert main(["swaps", "--buyers", "10", "--sellers", "3"]) == 0
        out = capsys.readouterr().out
        assert "two-stage welfare" in out

    def test_dynamic_command(self, capsys):
        assert main(["dynamic", "--epochs", "4", "--buyers", "15"]) == 0
        out = capsys.readouterr().out
        assert "cold" in out
        assert "warm" in out

    def test_distributed_with_loss(self, capsys):
        assert (
            main(
                [
                    "distributed",
                    "--buyers", "8",
                    "--sellers", "3",
                    "--policy", "default",
                    "--loss", "0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ARQ transport enabled" in out
        assert "matches centralized: True" in out

    def test_report_command(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "replication report" in out
        assert "FAIL" not in out
        assert out.count("PASS") == 8
