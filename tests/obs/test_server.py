"""Telemetry server: endpoints, lifecycle, robustness, thread hygiene."""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    Recorder,
    RunRegistry,
    SloEngine,
    TelemetryServer,
    parse_serve_address,
)
from repro.trace.export import parse_openmetrics


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode("utf-8")


@pytest.fixture()
def live_recorder():
    return Recorder(metrics=MetricsRegistry(), runs=RunRegistry())


class TestParseServeAddress:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("9100", ("127.0.0.1", 9100)),
            (":0", ("127.0.0.1", 0)),
            ("0.0.0.0:8000", ("0.0.0.0", 8000)),
            ("localhost:8000", ("localhost", 8000)),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_serve_address(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "host:", "host:port", ":70000"])
    def test_invalid(self, text):
        with pytest.raises(ObservabilityError):
            parse_serve_address(text)


class TestEndpoints:
    def test_metrics_scrape_parses_and_matches_registry(self, live_recorder):
        live_recorder.metrics.counter("sim.slots").inc(42)
        live_recorder.metrics.gauge("two_stage.welfare_phase2").set(30.0)
        with TelemetryServer(live_recorder) as server:
            text = _get(server.url + "/metrics")
        snapshot = parse_openmetrics(text)
        assert snapshot["counters"]["sim_slots"] == 42
        assert snapshot["gauges"]["two_stage_welfare_phase2"] == 30.0

    def test_health_reports_active_run(self, live_recorder):
        with TelemetryServer(live_recorder) as server:
            empty = json.loads(_get(server.url + "/health"))
            assert empty["status"] == "ok"
            assert empty["run"] is None
            assert empty["uptime_s"] >= 0.0
            live_recorder.emit("two_stage.start", buyers=5)
            payload = json.loads(_get(server.url + "/health"))
        assert payload["run"]["kind"] == "two_stage"
        assert payload["run"]["status"] == "running"

    def test_runs_endpoint_serves_registry_snapshot(self, live_recorder):
        live_recorder.emit("two_stage.start", buyers=5)
        live_recorder.emit("stage1.round", round=0)
        with TelemetryServer(live_recorder) as server:
            payload = json.loads(_get(server.url + "/runs"))
        (run,) = payload["runs"]
        assert run["rounds"] == 1
        assert payload["active_run"] == run["run_id"]

    def test_scrape_evaluates_slo_and_serves_status(self, live_recorder):
        live_recorder.metrics.counter("sim.slots").inc(10)
        engine = SloEngine(["slots<=1"], live_recorder, policy="warn")
        with TelemetryServer(live_recorder, slo_engine=engine) as server:
            _get(server.url + "/metrics")  # scrape triggers evaluation
            status = json.loads(_get(server.url + "/slo"))
        assert engine.violation_counts == {"slots<=1": 1}
        assert status["rules"][0]["ok"] is False

    def test_slo_404_without_engine_and_unknown_path(self, live_recorder):
        with TelemetryServer(live_recorder) as server:
            for path in ("/slo", "/nonsense"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(server.url + path)
                assert excinfo.value.code == 404
            index = json.loads(_get(server.url + "/"))
        assert "/metrics" in index["endpoints"]


class TestLifecycle:
    def test_port_zero_resolves_and_stop_joins_threads(self, live_recorder):
        before = set(threading.enumerate())
        server = TelemetryServer(live_recorder, port=0).start()
        try:
            assert server.port > 0
            assert server.url.startswith("http://127.0.0.1:")
            assert any(
                t.name == "repro-telemetry" for t in threading.enumerate()
            )
            _get(server.url + "/health")
        finally:
            server.stop()
        assert set(threading.enumerate()) == before
        assert not server.running

    def test_start_and_stop_are_idempotent(self, live_recorder):
        server = TelemetryServer(live_recorder)
        server.start()
        port = server.port
        assert server.start().port == port
        server.stop()
        server.stop()
        with pytest.raises(ObservabilityError):
            _ = server.port


class TestRobustness:
    """Bind collisions and misbehaving scrapers must not kill the server."""

    def test_bind_scans_past_a_taken_port(self, live_recorder):
        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            taken = blocker.getsockname()[1]
            server = TelemetryServer(live_recorder, port=taken).start()
            try:
                assert server.port == taken + 1
                _get(server.url + "/health")
            finally:
                server.stop()

    def test_exhausted_bind_scan_raises_named_range(self, live_recorder):
        blockers = []
        try:
            first = socket.socket()
            first.bind(("127.0.0.1", 0))
            first.listen(1)
            blockers.append(first)
            base = first.getsockname()[1]
            for offset in range(1, TelemetryServer.BIND_ATTEMPTS):
                sock = socket.socket()
                try:
                    sock.bind(("127.0.0.1", base + offset))
                    sock.listen(1)
                except OSError:
                    sock.close()
                    pytest.skip("could not occupy a contiguous port range")
                blockers.append(sock)
            with pytest.raises(ObservabilityError, match="is in use"):
                TelemetryServer(live_recorder, port=base).start()
        finally:
            for sock in blockers:
                sock.close()

    def test_survives_client_reset_mid_scrape(self, live_recorder):
        live_recorder.metrics.counter("sim.slots").inc(7)
        with TelemetryServer(live_recorder) as server:
            # Hang up with an RST immediately after the request so the
            # handler hits a broken pipe / connection reset on write.
            for _ in range(3):
                conn = socket.create_connection(("127.0.0.1", server.port))
                conn.send(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                conn.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                conn.close()
            time.sleep(0.1)
            # The server still answers politely-behaved scrapers.
            text = _get(server.url + "/metrics")
        assert "sim_slots" in text
