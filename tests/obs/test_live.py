"""Run registry: event-driven live run tracking."""

from __future__ import annotations

from repro.obs import ListEventSink, Recorder
from repro.obs.live import NULL_RUN_REGISTRY, NullRunRegistry, RunRegistry


def _observe_all(registry, events):
    for event in events:
        registry.observe(event)


class TestLifecycle:
    def test_two_stage_run_lifecycle(self):
        registry = RunRegistry()
        _observe_all(
            registry,
            [
                {"event": "manifest", "seed": 7, "schema_version": 1},
                {"event": "market.created", "scenario": "toy", "buyers": 5},
                {"event": "two_stage.start", "buyers": 5, "channels": 3},
                {"event": "stage1.round", "round": 0},
                {"event": "stage1.round", "round": 1},
                {"event": "stage2.transfer_round", "round": 0},
                {
                    "event": "two_stage.result",
                    "welfare_stage1": 27.0,
                    "welfare_phase2": 30.0,
                },
            ],
        )
        snapshot = registry.snapshot()
        assert snapshot["runs_started"] == 1
        assert snapshot["active_run"] is None  # result closed the run
        (run,) = snapshot["runs"]
        assert run["kind"] == "two_stage"
        assert run["status"] == "converged"
        assert run["phase"] == "done"
        assert run["rounds"] == 3
        assert run["welfare"] == [27.0, 30.0]
        assert run["meta"]["seed"] == 7
        assert run["last_event_age_s"] >= 0.0

    def test_distributed_run_tracks_slots_and_faults(self):
        registry = RunRegistry()
        _observe_all(
            registry,
            [
                {"event": "distributed.run_start", "buyers": 10},
                {
                    "event": "sim.slot",
                    "slot": 1,
                    "sent": 8,
                    "delivered": 7,
                    "dropped": 1,
                    "inflight": 2,
                },
                {"event": "sim.crash", "agent": "buyer:3"},
                {"event": "sim.partition"},
                {
                    "event": "sim.slot",
                    "slot": 2,
                    "sent": 4,
                    "delivered": 4,
                    "dropped": 0,
                    "inflight": 0,
                },
                {"event": "sim.restart", "agent": "buyer:3"},
                {"event": "sim.partition_healed"},
            ],
        )
        run = registry.active_run()
        assert run["status"] == "running"
        assert run["slot"] == 2
        assert run["progress"]["messages_sent"] == 12.0
        assert run["progress"]["messages_dropped"] == 1.0
        assert "crashed" not in run  # restarted
        assert "partitions" not in run  # healed
        registry.observe(
            {
                "event": "distributed.run_end",
                "status": "converged",
                "social_welfare": 21.5,
                "slots": 40,
            }
        )
        run = registry.active_run()
        assert run["status"] == "converged"
        assert run["slot"] == 40
        assert run["welfare"] == [21.5]

    def test_dynamic_run_self_registers_from_epochs(self):
        registry = RunRegistry()
        for epoch in range(3):
            registry.observe(
                {
                    "event": "dynamic.epoch",
                    "epoch": epoch,
                    "social_welfare": 10.0 + epoch,
                    "churned": 1,
                    "rounds": 2,
                }
            )
        run = registry.active_run()
        assert run["kind"] == "dynamic"
        assert run["epoch"] == 2
        assert run["welfare"] == [10.0, 11.0, 12.0]
        assert run["progress"]["churned"] == 3.0
        registry.observe({"event": "dynamic.run_end", "epochs": 3})
        assert registry.active_run()["status"] == "finished"

    def test_sweep_progress_gets_own_entry(self):
        registry = RunRegistry()
        registry.observe({"event": "analysis.progress", "completed": 1, "total": 3})
        registry.observe({"event": "two_stage.start"})
        registry.observe({"event": "two_stage.result", "welfare_phase2": 1.0})
        registry.observe({"event": "analysis.progress", "completed": 2, "total": 3})
        snapshot = registry.snapshot()
        kinds = {run["kind"]: run for run in snapshot["runs"]}
        assert kinds["sweep"]["status"] == "running"
        assert kinds["sweep"]["progress"] == {"completed": 2.0, "total": 3.0}
        assert kinds["two_stage"]["status"] == "converged"
        registry.observe({"event": "analysis.progress", "completed": 3, "total": 3})
        sweep = [
            r for r in registry.snapshot()["runs"] if r["kind"] == "sweep"
        ][0]
        assert sweep["status"] == "finished"

    def test_new_start_abandons_unfinished_run(self):
        registry = RunRegistry()
        registry.observe({"event": "two_stage.start"})
        registry.observe({"event": "two_stage.start"})
        statuses = [run["status"] for run in registry.snapshot()["runs"]]
        assert statuses == ["abandoned", "running"]

    def test_slo_violation_recorded_on_run(self):
        registry = RunRegistry()
        registry.observe({"event": "two_stage.start"})
        registry.observe({"event": "slo.violated", "rule": "slots<=1"})
        assert registry.active_run()["slo_violations"] == ["slots<=1"]


class TestBounds:
    def test_finished_runs_evicted(self):
        registry = RunRegistry(max_finished=4)
        for _ in range(10):
            registry.observe({"event": "two_stage.start"})
            registry.observe({"event": "two_stage.result", "welfare_phase2": 1.0})
        snapshot = registry.snapshot()
        assert len(snapshot["runs"]) == 4
        assert snapshot["runs_started"] == 10

    def test_welfare_trajectory_bounded(self):
        registry = RunRegistry()
        for epoch in range(1000):
            registry.observe(
                {"event": "dynamic.epoch", "epoch": epoch, "social_welfare": float(epoch)}
            )
        welfare = registry.active_run()["welfare"]
        assert len(welfare) <= 240
        assert welfare[0] == 0.0  # head anchor kept
        assert welfare[-1] == 999.0  # recent tail kept


class TestRecorderIntegration:
    def test_recorder_feeds_registry_without_sink(self):
        registry = RunRegistry()
        recorder = Recorder(runs=registry)
        assert recorder.enabled
        recorder.emit("two_stage.start", buyers=2)
        assert registry.active_run()["kind"] == "two_stage"

    def test_recorder_feeds_both_backends(self):
        registry = RunRegistry()
        sink = ListEventSink()
        recorder = Recorder(events=sink, runs=registry)
        recorder.emit("two_stage.start")
        assert sink.events[0]["event"] == "two_stage.start"
        assert registry.runs_started == 1

    def test_null_registry_is_inert(self):
        assert not NULL_RUN_REGISTRY.enabled
        NULL_RUN_REGISTRY.observe({"event": "two_stage.start"})
        assert NULL_RUN_REGISTRY.snapshot()["runs"] == []
        assert NULL_RUN_REGISTRY.active_run() is None
        assert isinstance(NULL_RUN_REGISTRY, NullRunRegistry)

    def test_default_recorder_has_null_registry(self):
        assert Recorder().runs is NULL_RUN_REGISTRY
        assert not Recorder().enabled
