"""SLO rules: parsing, signal resolution, policies and emission."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    ListEventSink,
    MetricsRegistry,
    Recorder,
    RunRegistry,
    SloEngine,
    parse_slo_rule,
)


class TestParsing:
    @pytest.mark.parametrize(
        "text, signal, op, threshold",
        [
            ("rounds_to_convergence<=40", "rounds_to_convergence", "<=", 40.0),
            ("drop_rate<0.05", "drop_rate", "<", 0.05),
            ("slot_age_s <= 2.5", "slot_age_s", "<=", 2.5),
            ("welfare_regression_pct<=10%", "welfare_regression_pct", "<=", 10.0),
            ("two_stage.welfare_phase2>=30", "two_stage.welfare_phase2", ">=", 30.0),
            ("slots>1e2", "slots", ">", 100.0),
        ],
    )
    def test_valid_rules(self, text, signal, op, threshold):
        rule = parse_slo_rule(text)
        assert rule.signal == signal
        assert rule.op == op
        assert rule.threshold == threshold

    @pytest.mark.parametrize(
        "text", ["", "slots", "slots==3", "<=40", "slots<=abc", "a b<=1"]
    )
    def test_invalid_rules(self, text):
        with pytest.raises(ObservabilityError):
            parse_slo_rule(text)

    def test_bad_policy_rejected(self):
        with pytest.raises(ObservabilityError):
            SloEngine([], Recorder(), policy="explode")


def _live_recorder():
    return Recorder(
        events=ListEventSink(), metrics=MetricsRegistry(), runs=RunRegistry()
    )


class TestSignals:
    def test_rounds_to_convergence_sums_stage_counters(self):
        recorder = _live_recorder()
        recorder.metrics.counter("stage1.rounds").inc(5)
        recorder.metrics.counter("stage2.transfer_rounds").inc(2)
        engine = SloEngine(["rounds_to_convergence<=4"], recorder)
        (violation,) = engine.evaluate()
        assert violation.value == 7.0

    def test_drop_rate_needs_traffic(self):
        recorder = _live_recorder()
        engine = SloEngine(["drop_rate<0.01"], recorder)
        assert engine.evaluate() == []  # no messages yet: not measurable
        recorder.metrics.counter("sim.messages_sent").inc(100)
        recorder.metrics.counter("sim.messages_dropped").inc(10)
        (violation,) = engine.evaluate()
        assert violation.value == pytest.approx(0.1)

    def test_slot_age_only_for_running_run(self):
        recorder = _live_recorder()
        engine = SloEngine(["slot_age_s<=0.000001"], recorder)
        assert engine.evaluate() == []  # no run at all
        recorder.emit("two_stage.start")
        assert len(engine.evaluate()) == 1  # any age beats a 1us budget
        recorder.emit("two_stage.result", welfare_phase2=1.0)
        engine.violation_counts.clear()
        assert engine.evaluate() == []  # finished runs aren't stale

    def test_welfare_regression_against_reference(self):
        recorder = _live_recorder()
        recorder.metrics.gauge("two_stage.welfare_phase2").set(18.0)
        engine = SloEngine(["welfare_regression_pct<=5"], recorder)
        assert engine.evaluate() == []  # no reference installed
        engine.set_reference("welfare", 20.0)
        (violation,) = engine.evaluate()
        assert violation.value == pytest.approx(10.0)

    def test_generic_counter_and_gauge_fallback(self):
        recorder = _live_recorder()
        recorder.metrics.counter("sim.messages_dropped").inc(3)
        recorder.metrics.gauge("custom.level").set(0.5)
        engine = SloEngine(
            ["sim.messages_dropped<=2", "custom.level>=0.9"], recorder
        )
        violations = engine.evaluate()
        assert {v.rule.signal for v in violations} == {
            "sim.messages_dropped",
            "custom.level",
        }


class TestPolicyAndEmission:
    def test_first_violation_emits_event_and_counter(self):
        recorder = _live_recorder()
        recorder.metrics.counter("sim.slots").inc(10)
        engine = SloEngine(["slots<=1"], recorder)
        engine.evaluate()
        engine.evaluate()
        violated = recorder.events.of_type("slo.violated")
        assert len(violated) == 1  # deduplicated across scrapes
        assert violated[0]["rule"] == "slots<=1"
        assert violated[0]["value"] == 10.0
        assert recorder.metrics.counter("slo.violations").value == 1
        assert engine.violation_counts["slots<=1"] == 2

    def test_final_evaluation_re_emits(self):
        recorder = _live_recorder()
        recorder.metrics.counter("sim.slots").inc(10)
        engine = SloEngine(["slots<=1"], recorder)
        engine.evaluate()
        engine.evaluate(final=True)
        finals = [
            e
            for e in recorder.events.of_type("slo.violated")
            if e.get("final")
        ]
        assert len(finals) == 1

    def test_exit_code_follows_policy(self):
        recorder = _live_recorder()
        recorder.metrics.counter("sim.slots").inc(10)
        warn = SloEngine(["slots<=1"], recorder, policy="warn")
        warn.evaluate()
        assert warn.violated and warn.exit_code() == 0
        fail = SloEngine(["slots<=1"], recorder, policy="fail")
        fail.evaluate()
        assert fail.exit_code() == 1
        clean = SloEngine(["slots<=100"], recorder, policy="fail")
        clean.evaluate()
        assert clean.exit_code() == 0

    def test_status_payload(self):
        recorder = _live_recorder()
        recorder.metrics.counter("sim.slots").inc(10)
        engine = SloEngine(["slots<=1", "drop_rate<0.5"], recorder)
        engine.evaluate()
        status = engine.status()
        by_rule = {row["rule"]: row for row in status["rules"]}
        assert by_rule["slots<=1"]["ok"] is False
        assert by_rule["slots<=1"]["violations"] == 1
        assert by_rule["drop_rate<0.5"]["value"] is None
        assert by_rule["drop_rate<0.5"]["ok"] is True
