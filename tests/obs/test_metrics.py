"""Metrics registry: instruments, snapshots, and the null backend."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, NullMetrics


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert gauge.value is None
        gauge.set(1.0)
        gauge.set(-2.5)
        assert gauge.value == -2.5

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        timer = registry.timer("t_s")
        for _ in range(3):
            with timer:
                pass
        assert timer.count == 3
        assert timer.total_s >= 0.0
        assert timer.min_s <= timer.mean_s <= timer.max_s

    def test_timer_observe(self):
        registry = MetricsRegistry()
        timer = registry.timer("t_s")
        timer.observe(1.0)
        timer.observe(3.0)
        assert timer.count == 2
        assert timer.total_s == pytest.approx(4.0)
        assert timer.mean_s == pytest.approx(2.0)
        assert (timer.min_s, timer.max_s) == (1.0, 3.0)

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 2]
        assert hist.count == 4
        assert hist.min == 0.5
        assert hist.max == 500.0

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram("h", boundaries=(10.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ObservabilityError):
            registry.gauge("name")

    def test_snapshot_is_json_safe_and_grouped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a.count").inc(2)
        registry.gauge("a.level").set(1.5)
        registry.timer("a.time_s").observe(0.25)
        registry.histogram("a.dist").observe(3.0)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"] == {"a.count": 2}
        assert snapshot["gauges"] == {"a.level": 1.5}
        assert snapshot["timers"]["a.time_s"]["count"] == 1
        assert snapshot["histograms"]["a.dist"]["count"] == 1


class TestNullBackend:
    def test_disabled_flag(self):
        assert MetricsRegistry.enabled is True
        assert NullMetrics().enabled is False

    def test_null_instruments_are_shared_singletons(self):
        null = NullMetrics()
        assert null.counter("a") is null.counter("b")
        assert null.gauge("a") is null.gauge("b")
        assert null.timer("a") is null.timer("b")
        assert null.histogram("a") is null.histogram("b")

    def test_null_instruments_record_nothing(self):
        null = NullMetrics()
        null.counter("c").inc(100)
        null.gauge("g").set(42.0)
        with null.timer("t"):
            pass
        null.timer("t").observe(5.0)
        null.histogram("h").observe(1.0)
        assert null.counter("c").value == 0
        assert null.gauge("g").value is None
        assert null.timer("t").count == 0
        assert null.histogram("h").count == 0
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }


class TestQuantiles:
    def _histogram(self, values, boundaries=(1.0, 10.0, 100.0)):
        histogram = MetricsRegistry().histogram("h", boundaries=list(boundaries))
        for value in values:
            histogram.observe(value)
        return histogram

    def test_quantile_validates_range(self):
        histogram = self._histogram([1.0])
        with pytest.raises(ObservabilityError):
            histogram.quantile(-0.1)
        with pytest.raises(ObservabilityError):
            histogram.quantile(1.5)

    def test_empty_histogram_quantile_is_zero(self):
        assert self._histogram([]).quantile(0.5) == 0.0

    def test_extremes_clamped_to_observed_min_max(self):
        histogram = self._histogram([2.0, 3.0, 4.0, 50.0])
        assert histogram.quantile(0.0) == 2.0
        assert histogram.quantile(1.0) == 50.0

    def test_median_interpolates_within_bucket(self):
        # 100 observations spread uniformly in [0, 10): the estimated
        # median must land near the true one, well within bucket width.
        values = [index / 10.0 for index in range(100)]
        histogram = self._histogram(values, boundaries=(2.0, 4.0, 6.0, 8.0))
        assert abs(histogram.quantile(0.5) - 5.0) < 1.0

    def test_single_bucket_degenerates_to_its_value(self):
        histogram = self._histogram([5.0, 5.0, 5.0])
        assert histogram.quantile(0.25) == 5.0
        assert histogram.quantile(0.99) == 5.0

    def test_snapshot_quantile_matches_live_instrument(self):
        from repro.obs.metrics import snapshot_quantile

        histogram = self._histogram([0.5, 5.0, 50.0, 500.0])
        snapshot = histogram.snapshot()
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert snapshot_quantile(snapshot, q) == histogram.quantile(q)


class TestThreadSafety:
    def test_concurrent_increments_are_lossless(self):
        import threading

        registry = MetricsRegistry()
        workers, per_worker = 8, 2000

        def hammer():
            for _ in range(per_worker):
                registry.counter("hits").inc()
                registry.histogram("load").observe(1.0)
                registry.timer("step_s").observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = workers * per_worker
        assert registry.counter("hits").value == expected
        assert registry.histogram("load").count == expected
        assert registry.timer("step_s").count == expected

    def test_counters_monotone_under_concurrent_scrapes(self):
        import threading

        registry = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                registry.counter("ticks").inc()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            previous = -1
            for _ in range(200):
                snapshot = registry.snapshot()
                value = snapshot["counters"].get("ticks", 0)
                assert value >= previous
                previous = value
        finally:
            stop.set()
            thread.join()

    def test_snapshot_is_atomic_across_instruments(self):
        # Writers bump two counters in lockstep under the registry lock's
        # instrument propagation; a snapshot must never observe the pair
        # torn apart by more than the in-flight increment.
        import threading

        registry = MetricsRegistry()
        a, b = registry.counter("a"), registry.counter("b")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                a.inc()
                b.inc()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snapshot = registry.snapshot()
                counters = snapshot["counters"]
                delta = counters.get("a", 0) - counters.get("b", 0)
                assert 0 <= delta <= 1
        finally:
            stop.set()
            thread.join()
