"""Watch console: sparkline, frame rendering, sources and the loop."""

from __future__ import annotations

import io

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    JsonlEventSink,
    MetricsRegistry,
    Recorder,
    RunRegistry,
    TelemetryServer,
)
from repro.obs.watch import (
    ServerSource,
    TraceSource,
    open_source,
    render_frame,
    sparkline,
    watch,
)


class TestSparkline:
    def test_empty_and_constant(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_monotone_rises(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_width_keeps_tail(self):
        line = sparkline([float(i) for i in range(100)], width=10)
        assert len(line) == 10
        assert line[-1] == "█"


class TestRenderFrame:
    def test_empty_frame(self):
        text = render_frame({"source": "x.jsonl"})
        assert "no runs observed yet" in text

    def test_full_frame_sections(self):
        frame = {
            "source": "http://127.0.0.1:9100",
            "runs": {
                "active_run": 1,
                "runs_started": 1,
                "events_observed": 40,
                "runs": [
                    {
                        "run_id": 1,
                        "kind": "distributed",
                        "phase": "protocol",
                        "status": "running",
                        "slot": 17,
                        "rounds": 0,
                        "last_event_age_s": 0.2,
                        "welfare": [20.0, 22.0, 25.0],
                        "progress": {
                            "messages_sent": 100.0,
                            "messages_delivered": 93.0,
                            "messages_dropped": 7.0,
                            "inflight": 4.0,
                        },
                        "crashed": ["buyer:3"],
                        "partitions": 1,
                        "slo_violations": ["drop_rate<0.05"],
                        "meta": {},
                    }
                ],
            },
            "metrics": {
                "histograms": {
                    "sim_agent_step_s": {
                        "count": 10,
                        "sum": 0.02,
                        "min": 0.001,
                        "max": 0.005,
                        "boundaries": [0.001, 0.01],
                        "bucket_counts": [5, 5, 0],
                    }
                }
            },
            "slo": {
                "policy": "warn",
                "rules": [
                    {"rule": "drop_rate<0.05", "value": 0.07, "ok": False,
                     "violations": 1}
                ],
            },
        }
        text = render_frame(frame)
        assert "run #1 distributed [protocol]" in text
        assert "slot=17" in text
        assert "welfare" in text and "25.000" in text
        assert "sent=100 delivered=93 dropped=7 (7.0%)" in text
        assert "crashed=['buyer:3'] partitions=1" in text
        assert "agent step p50=" in text and "p99=" in text
        assert "drop_rate<0.05: VIOLATED (0.07)" in text

    def test_source_error_surfaces(self):
        text = render_frame({"source": "http://down", "error": "refused"})
        assert "[source error] refused" in text

    def test_profile_panels_render_top_spans_and_allocs(self):
        frame = {
            "source": "x.jsonl",
            "profile": {
                "spans": [
                    {"name": "stage1.mwis", "count": 40, "wall_s": 0.08,
                     "cpu_s": 0.08, "self_s": 0.08},
                    {"name": "stage2", "count": 1, "wall_s": 0.01,
                     "cpu_s": 0.01, "self_s": 0.01},
                ],
                "allocs": [
                    {"site": "soa.py:353", "size_kb": 5.7, "count": 1},
                ],
            },
        }
        text = render_frame(frame)
        assert "top spans stage1.mwis=80.0ms" in text
        assert "top alloc soa.py:353=5.7kB" in text

    def test_hot_phase_panel_from_metrics_timers(self):
        frame = {
            "source": "x.jsonl",
            "metrics": {
                "timers": {
                    "stage1_mwis_solve_s": {"count": 7, "total_s": 0.4,
                                            "mean_s": 0.057, "max_s": 0.1},
                    "stage2_transfer_s": {"count": 1, "total_s": 0.1,
                                          "mean_s": 0.1, "max_s": 0.1},
                }
            },
        }
        text = render_frame(frame)
        assert "phases    stage1_mwis_solve_s=400.0ms" in text

    def test_missing_profile_stays_hidden(self):
        assert "top spans" not in render_frame({"source": "x", "profile": {}})


class TestSources:
    def test_trace_source_replays_into_registry(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlEventSink(path) as sink:
            sink.emit({"event": "two_stage.start", "buyers": 5})
            sink.emit({"event": "stage1.round", "round": 0})
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"torn...')  # in-flight final line
        source = TraceSource(path)
        frame = source.fetch()
        (run,) = frame["runs"]["runs"]
        assert run["kind"] == "two_stage"
        assert run["rounds"] == 1
        assert frame["skipped"] == 0  # torn line pending, not skipped
        assert "torn" not in str(frame)

    def test_server_source_fetches_all_endpoints(self):
        recorder = Recorder(metrics=MetricsRegistry(), runs=RunRegistry())
        recorder.metrics.counter("sim.slots").inc(3)
        recorder.emit("two_stage.start", buyers=2)
        with TelemetryServer(recorder) as server:
            frame = ServerSource(server.url).fetch()
        assert frame["health"]["status"] == "ok"
        assert frame["metrics"]["counters"]["sim_slots"] == 3
        assert frame["runs"]["runs"][0]["kind"] == "two_stage"
        assert "slo" not in frame  # 404 tolerated, key omitted

    def test_server_source_reports_connection_error(self):
        frame = ServerSource("http://127.0.0.1:1", timeout_s=0.5).fetch()
        assert "error" in frame

    def test_open_source_dispatch(self, tmp_path):
        assert isinstance(open_source("http://x:1"), ServerSource)
        assert isinstance(
            open_source(str(tmp_path / "t.jsonl")), TraceSource
        )


class TestLoop:
    def test_bounded_frames_plain(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlEventSink(path) as sink:
            sink.emit({"event": "two_stage.start"})
        out = io.StringIO()
        code = watch(
            path, interval_s=0.01, frames=2, plain=True, stream=out,
            sleep=lambda _s: None,
        )
        assert code == 0
        assert out.getvalue().count("repro watch —") == 2
        assert "\x1b[2J" not in out.getvalue()

    def test_ansi_clear_by_default(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlEventSink(path) as sink:
            sink.emit({"event": "two_stage.start"})
        out = io.StringIO()
        watch(path, frames=1, stream=out, sleep=lambda _s: None)
        assert out.getvalue().startswith("\x1b[2J")

    def test_rejects_bad_interval(self):
        with pytest.raises(ObservabilityError):
            watch("x.jsonl", interval_s=0.0, frames=1)
