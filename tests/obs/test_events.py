"""Event sinks, the JSONL format, and exact round-event round-trips."""

from __future__ import annotations

import io
import json

import pytest

from repro.core.trace import InvitationRound, StageOneRound, TransferRound
from repro.errors import ObservabilityError
from repro.obs import (
    JsonlEventSink,
    ListEventSink,
    NullEventSink,
    build_manifest,
    event_to_round,
    round_to_event,
)

STAGE1 = StageOneRound(
    round_index=2,
    proposals={0: (1, 3), 2: (4,)},
    waitlists={0: (1,), 1: (0, 2)},
    evictions=((2, 1),),
    rejections=((3, 0), (4, 2)),
)
TRANSFER = TransferRound(
    round_index=1,
    applications={1: (0, 2)},
    accepted=((0, -1, 1),),
    rejected=((2, 1),),
)
INVITATION = InvitationRound(
    round_index=3,
    invitations=((1, 4),),
    accepted=((4, 0, 1),),
    declined=(),
)


class TestRoundTrip:
    @pytest.mark.parametrize("record", [STAGE1, TRANSFER, INVITATION])
    def test_json_round_trip_is_exact(self, record):
        event = round_to_event(record)
        decoded = json.loads(json.dumps(event))
        assert event_to_round(decoded) == record

    def test_event_types(self):
        assert round_to_event(STAGE1)["event"] == "stage1.round"
        assert round_to_event(TRANSFER)["event"] == "stage2.transfer_round"
        assert round_to_event(INVITATION)["event"] == "stage2.invitation_round"

    def test_non_round_event_rejected(self):
        with pytest.raises(ObservabilityError):
            event_to_round({"event": "sim.slot"})
        with pytest.raises(ObservabilityError):
            round_to_event("not a record")


class TestSinks:
    def test_null_sink_is_disabled_and_silent(self):
        sink = NullEventSink()
        assert sink.enabled is False
        sink.emit({"event": "x"})  # must not raise nor store

    def test_list_sink_collects_and_filters(self):
        sink = ListEventSink()
        sink.emit({"event": "a", "n": 1})
        sink.emit({"event": "b"})
        sink.emit({"event": "a", "n": 2})
        assert [e["n"] for e in sink.of_type("a")] == [1, 2]

    def test_jsonl_sink_writes_manifest_first(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlEventSink(str(path), manifest=build_manifest(seed=11))
        sink.emit({"event": "x", "value": 1.5})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        manifest = json.loads(lines[0])
        assert manifest["event"] == "manifest"
        assert manifest["seed"] == 11
        assert "repro" in manifest["versions"]
        assert json.loads(lines[1]) == {"event": "x", "value": 1.5}

    def test_jsonl_sink_borrowed_stream_not_closed(self):
        stream = io.StringIO()
        sink = JsonlEventSink(stream)
        sink.emit({"event": "x"})
        sink.close()
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"event": "x"}

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlEventSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ObservabilityError):
            sink.emit({"event": "late"})


class TestManifest:
    def test_market_shape_recorded(self, toy_market):
        manifest = build_manifest(seed=3, market=toy_market)
        assert manifest["market"]["num_buyers"] == toy_market.num_buyers
        assert manifest["market"]["num_channels"] == toy_market.num_channels

    def test_config_values_coerced_json_safe(self):
        manifest = build_manifest(config={"path": None, "xs": (1, 2), "o": object()})
        encoded = json.dumps(manifest)  # must not raise
        decoded = json.loads(encoded)
        assert decoded["config"]["xs"] == [1, 2]
        assert isinstance(decoded["config"]["o"], str)


class TestBufferedFlush:
    def test_flush_every_batches_writes(self):
        stream = io.StringIO()
        sink = JsonlEventSink(stream, flush_every=3)
        sink.emit({"event": "a"})
        sink.emit({"event": "b"})
        assert stream.getvalue() == ""  # still buffered
        sink.emit({"event": "c"})  # third emit drains the batch
        assert len(stream.getvalue().splitlines()) == 3
        sink.close()

    def test_close_always_flushes_partial_buffer(self):
        stream = io.StringIO()
        sink = JsonlEventSink(stream, flush_every=100)
        sink.emit({"event": "a"})
        sink.emit({"event": "b"})
        sink.close()
        assert [json.loads(line)["event"] for line in
                stream.getvalue().splitlines()] == ["a", "b"]

    def test_buffered_output_identical_to_write_through(self):
        def render(flush_every):
            stream = io.StringIO()
            sink = JsonlEventSink(stream, flush_every=flush_every)
            for index in range(7):
                sink.emit({"event": "tick", "n": index})
            sink.close()
            return stream.getvalue()

        assert render(1) == render(3) == render(100)

    def test_flush_every_validated(self):
        with pytest.raises(ObservabilityError):
            JsonlEventSink(io.StringIO(), flush_every=0)

    def test_path_attribute_reports_file_target(self, tmp_path):
        target = tmp_path / "t.jsonl"
        sink = JsonlEventSink(str(target))
        assert sink.path == str(target)
        sink.close()
        assert JsonlEventSink(io.StringIO()).path is None
