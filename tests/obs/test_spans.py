"""Span tracing: nesting, parent links, timing, and the null tracer."""

from __future__ import annotations

import time

from repro.obs.spans import NullSpanTracer, SpanTracer


class TestSpanTracer:
    def test_nesting_depth_and_parent_links(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
            with tracer.span("mid"):
                pass
        by_name = {}
        for record in tracer.records:
            by_name.setdefault(record.name, []).append(record)
        (outer,) = by_name["outer"]
        mids = by_name["mid"]
        (inner,) = by_name["inner"]
        assert outer.depth == 0 and outer.parent == -1
        assert [m.depth for m in mids] == [1, 1]
        assert all(m.parent == outer.index for m in mids)
        assert inner.depth == 2
        assert inner.parent == mids[0].index

    def test_children_finish_before_parents(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r.name for r in tracer.records] == ["b", "a"]
        assert tracer.roots() == [tracer.records[1]]

    def test_wall_time_measures_elapsed(self):
        tracer = SpanTracer()
        with tracer.span("sleep"):
            time.sleep(0.01)
        record = tracer.records[0]
        assert record.wall_s >= 0.009
        assert record.cpu_s >= 0.0
        # Sleeping burns wall clock, not CPU.
        assert record.cpu_s < record.wall_s

    def test_parent_wall_covers_children(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.005)
        inner, outer = tracer.records
        assert outer.wall_s >= inner.wall_s

    def test_on_finish_callback_sees_resolved_records(self):
        seen = []
        tracer = SpanTracer(on_finish=lambda r: seen.append(r.name))
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert seen == ["b", "a"]

    def test_sequential_roots(self):
        tracer = SpanTracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.parent for r in tracer.records] == [-1, -1]
        assert [r.name for r in tracer.roots()] == ["first", "second"]


class TestNullSpanTracer:
    def test_disabled_and_recordless(self):
        tracer = NullSpanTracer()
        assert tracer.enabled is False
        with tracer.span("anything"):
            with tracer.span("nested"):
                pass
        assert tracer.records == []

    def test_span_is_shared_singleton(self):
        tracer = NullSpanTracer()
        assert tracer.span("a") is tracer.span("b")
