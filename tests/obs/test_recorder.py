"""Recorder facade, ambient installation, and pipeline instrumentation.

The last class is the null-backend guarantee the observability layer is
built around: with no recorder installed (the default), the pipeline and
the simulator produce results identical to an instrumented run, and the
null backends record nothing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.two_stage import run_two_stage
from repro.distributed.protocol import run_distributed_matching
from repro.dynamic.generator import DynamicMarketGenerator
from repro.dynamic.online import OnlineMatcher, RematchStrategy
from repro.obs import (
    NULL_RECORDER,
    JsonlEventSink,
    ListEventSink,
    MetricsRegistry,
    Recorder,
    SpanTracer,
    get_recorder,
    resolve_recorder,
    use_recorder,
)


def live_recorder() -> Recorder:
    return Recorder(
        events=ListEventSink(), metrics=MetricsRegistry(), spans=SpanTracer()
    )


class TestRecorderFacade:
    def test_default_recorder_is_fully_null(self):
        recorder = Recorder()
        assert recorder.enabled is False
        assert recorder.events.enabled is False
        assert recorder.metrics.enabled is False
        assert recorder.spans.enabled is False

    def test_enabled_with_any_live_backend(self):
        assert Recorder(events=ListEventSink()).enabled
        assert Recorder(metrics=MetricsRegistry()).enabled
        assert Recorder(spans=SpanTracer()).enabled

    def test_emit_adds_event_type(self):
        recorder = Recorder(events=ListEventSink())
        recorder.emit("my.event", value=3)
        assert recorder.events.events == [{"event": "my.event", "value": 3}]

    def test_spans_mirrored_into_event_stream(self):
        recorder = live_recorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        names = [e["name"] for e in recorder.events.of_type("span")]
        assert names == ["inner", "outer"]

    def test_ambient_install_and_reset(self):
        assert get_recorder() is NULL_RECORDER
        recorder = live_recorder()
        with use_recorder(recorder):
            assert get_recorder() is recorder
            assert resolve_recorder(None) is recorder
        assert get_recorder() is NULL_RECORDER

    def test_explicit_recorder_wins_over_ambient(self):
        ambient, explicit = live_recorder(), live_recorder()
        with use_recorder(ambient):
            assert resolve_recorder(explicit) is explicit


class TestPipelineInstrumentation:
    def test_round_events_match_trace(self, market_factory):
        market = market_factory(num_buyers=16, num_channels=4, seed=5)
        recorder = live_recorder()
        result = run_two_stage(market, recorder=recorder)
        sink = recorder.events
        assert len(sink.of_type("stage1.round")) == result.rounds_stage1
        assert (
            len(sink.of_type("stage2.transfer_round")) == result.rounds_phase1
        )
        assert (
            len(sink.of_type("stage2.invitation_round"))
            == result.rounds_phase2
        )

    def test_rounds_emitted_even_without_trace_recording(self, market_factory):
        market = market_factory(num_buyers=16, num_channels=4, seed=5)
        recorder = live_recorder()
        result = run_two_stage(market, record_trace=False, recorder=recorder)
        assert result.stage_one.rounds == ()
        assert (
            len(recorder.events.of_type("stage1.round"))
            == result.rounds_stage1
        )

    def test_span_hierarchy(self, toy_market):
        recorder = live_recorder()
        run_two_stage(toy_market, recorder=recorder)
        roots = recorder.spans.roots()
        assert [r.name for r in roots] == ["two_stage"]
        depth1 = {r.name for r in recorder.spans.records if r.depth == 1}
        assert depth1 == {"stage1", "stage2"}
        depth2 = {r.name for r in recorder.spans.records if r.depth == 2}
        assert {"stage2.transfer", "stage2.invitation"} <= depth2
        assert "stage1.mwis" in depth2

    def test_counters_match_result(self, market_factory):
        market = market_factory(num_buyers=20, num_channels=5, seed=2)
        recorder = live_recorder()
        result = run_two_stage(market, recorder=recorder)
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["stage1.rounds"] == result.rounds_stage1
        assert counters["stage1.proposals"] == result.stage_one.total_proposals
        assert counters["stage2.transfer_rounds"] == result.rounds_phase1
        assert counters["stage2.invitation_rounds"] == result.rounds_phase2
        assert counters["two_stage.runs"] == 1

    def test_mwis_timer_counts_solves(self, toy_market):
        recorder = live_recorder()
        run_two_stage(toy_market, recorder=recorder)
        timer = recorder.metrics.timer("stage1.mwis_solve_s")
        mwis_spans = [
            r for r in recorder.spans.records if r.name == "stage1.mwis"
        ]
        assert timer.count == len(mwis_spans) > 0

    def test_simulator_slot_events(self, market_factory):
        market = market_factory(num_buyers=10, num_channels=3, seed=1)
        recorder = live_recorder()
        run = run_distributed_matching(market, recorder=recorder)
        slot_events = recorder.events.of_type("sim.slot")
        assert len(slot_events) == run.slots
        assert sum(e["sent"] for e in slot_events) == run.messages_sent
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["sim.slots"] == run.slots
        assert counters["sim.messages_sent"] == run.messages_sent
        assert counters["sim.messages_delivered"] == run.messages_delivered
        done = recorder.events.of_type("sim.done")
        assert len(done) == 1 and done[0]["slots"] == run.slots
        hist = recorder.metrics.histogram("sim.agent_step_s")
        assert hist.count == run.slots * (
            market.num_buyers + market.num_channels
        )

    def test_distributed_lifecycle_events(self, market_factory):
        market = market_factory(num_buyers=8, num_channels=3, seed=3)
        recorder = live_recorder()
        with use_recorder(recorder):
            run_distributed_matching(market)
        assert len(recorder.events.of_type("distributed.run_start")) == 1
        end = recorder.events.of_type("distributed.run_end")
        assert len(end) == 1 and end[0]["slots"] > 0

    def test_dynamic_epoch_events(self):
        generator = DynamicMarketGenerator(
            num_channels=3,
            initial_buyers=10,
            arrival_rate=2.0,
            departure_prob=0.1,
            drift_sigma=0.05,
            rng=np.random.default_rng(0),
        )
        recorder = live_recorder()
        matcher = OnlineMatcher(RematchStrategy.WARM, recorder=recorder)
        outcomes = matcher.run(generator.epochs(4))
        events = recorder.events.of_type("dynamic.epoch")
        assert len(events) == len(outcomes) == 4
        assert [e["epoch"] for e in events] == [o.epoch_index for o in outcomes]
        assert recorder.metrics.snapshot()["counters"]["dynamic.epochs"] == 4

    def test_jsonl_trace_of_full_run_is_valid(self, tmp_path, toy_market):
        path = tmp_path / "run.jsonl"
        recorder = Recorder(events=JsonlEventSink(str(path)))
        with recorder:
            run_two_stage(toy_market, recorder=recorder)
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)


class TestNullBackendParity:
    """Observability off (the default) must not change any result."""

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_two_stage_identical_with_and_without_recorder(
        self, market_factory, seed
    ):
        market = market_factory(num_buyers=24, num_channels=5, seed=seed)
        plain = run_two_stage(market)
        observed = run_two_stage(market, recorder=live_recorder())
        assert plain == observed

    def test_distributed_identical_with_and_without_recorder(
        self, market_factory
    ):
        market = market_factory(num_buyers=12, num_channels=4, seed=9)
        plain = run_distributed_matching(market)
        observed = run_distributed_matching(market, recorder=live_recorder())
        assert plain.matching == observed.matching
        assert plain.slots == observed.slots
        assert plain.messages_sent == observed.messages_sent
        assert plain.messages_delivered == observed.messages_delivered
        assert plain.social_welfare == observed.social_welfare

    def test_default_path_records_nothing(self, toy_market):
        before_events = NULL_RECORDER.events.enabled
        result = run_two_stage(toy_market)
        assert result.social_welfare == 30.0
        assert NULL_RECORDER.events.enabled is before_events is False
        assert NULL_RECORDER.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }
        assert NULL_RECORDER.spans.records == []
