"""Unit tests for the metrics/span text summaries.

``format_span_tree`` now carries a self-time column (wall minus direct
children) and a ``sort`` option; these pin the rendering contract the
CLI's ``--metrics`` flag exposes.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, Recorder
from repro.obs.spans import SpanTracer
from repro.obs.summary import format_metrics_summary, format_span_tree


def _recorder_with_spans():
    recorder = Recorder(metrics=MetricsRegistry(), spans=SpanTracer())
    with recorder.span("root"):
        with recorder.span("fast"):
            pass
        with recorder.span("slow"):
            for _ in range(2000):
                pass
        with recorder.span("leaf"):
            pass
        with recorder.span("leaf"):
            pass
    return recorder


class TestFormatSpanTree:
    def test_three_time_columns_per_line(self):
        tree = format_span_tree(_recorder_with_spans())
        for line in tree.splitlines():
            # "name  wall / cpu / self" -- three slash-separated times.
            assert line.count("/") == 2, line

    def test_repeated_spans_roll_up_with_count(self):
        tree = format_span_tree(_recorder_with_spans())
        assert "leaf x2" in tree

    def test_root_self_time_excludes_children(self):
        recorder = Recorder(metrics=MetricsRegistry(), spans=SpanTracer())
        with recorder.span("root"):
            with recorder.span("child"):
                for _ in range(2000):
                    pass
        root_line = format_span_tree(recorder).splitlines()[0]
        times = [
            float(part.strip().rstrip("s"))
            for part in root_line.split("  ")[-1].split("/")
        ]
        wall, _cpu, self_s = times
        assert 0.0 <= self_s < wall

    def test_sort_self_puts_most_expensive_sibling_first(self):
        tree = format_span_tree(_recorder_with_spans(), sort="self")
        children = [
            line.strip().split()[0]
            for line in tree.splitlines()
            if line.startswith("    ")
        ]
        assert children[0] == "slow"

    def test_record_order_is_the_default(self):
        tree = format_span_tree(_recorder_with_spans())
        children = [
            line.strip().split()[0]
            for line in tree.splitlines()
            if line.startswith("    ")
        ]
        assert children == ["fast", "slow", "leaf"]

    def test_unknown_sort_rejected(self):
        with pytest.raises(ValueError, match="sort"):
            format_span_tree(_recorder_with_spans(), sort="wall")

    def test_truncation_marker(self):
        recorder = Recorder(metrics=MetricsRegistry(), spans=SpanTracer())
        for index in range(8):
            with recorder.span(f"span{index}"):
                pass
        tree = format_span_tree(recorder, max_lines=3)
        assert "5 more span lines" in tree

    def test_no_spans_renders_empty(self):
        assert format_span_tree(Recorder()) == ""


class TestFormatMetricsSummary:
    def test_idle_recorder(self):
        assert format_metrics_summary(Recorder()) == "(no metrics recorded)"

    def test_sections_render_with_data(self):
        recorder = _recorder_with_spans()
        recorder.metrics.counter("stage1.rounds").inc(4)
        recorder.metrics.gauge("market.buyers").set(20)
        text = format_metrics_summary(recorder)
        assert "counters:" in text
        assert "stage1.rounds" in text
        assert "spans (wall / cpu / self):" in text

    def test_header_names_the_self_column(self):
        text = format_metrics_summary(_recorder_with_spans())
        assert "spans (wall / cpu / self):" in text
