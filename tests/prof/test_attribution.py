"""Attribution tables: span self-time, function rows, allocation rows."""

from __future__ import annotations

from repro.obs.spans import SpanRecord
from repro.prof import span_table
from repro.prof.attribution import function_table


def _record(name, index, parent, depth, wall, cpu=None):
    return SpanRecord(
        name=name,
        index=index,
        parent=parent,
        depth=depth,
        wall_s=wall,
        cpu_s=wall if cpu is None else cpu,
        start_s=0.0,
    )


class TestSpanTable:
    def test_self_time_subtracts_direct_children_only(self):
        # grandchild(1.0) < child(3.0) < root(10.0): the root's self
        # time excludes the child but not the grandchild (which the
        # child already accounts for).
        records = [
            _record("grandchild", 0, 1, 2, 1.0),
            _record("child", 1, 2, 1, 3.0),
            _record("root", 2, -1, 0, 10.0),
        ]
        rows = {row["name"]: row for row in span_table(records)}
        assert rows["root"]["self_s"] == 7.0
        assert rows["child"]["self_s"] == 2.0
        assert rows["grandchild"]["self_s"] == 1.0

    def test_repeated_spans_aggregate_by_name(self):
        records = [
            _record("leaf", 0, 2, 1, 1.0),
            _record("leaf", 1, 2, 1, 2.0),
            _record("root", 2, -1, 0, 5.0),
        ]
        rows = {row["name"]: row for row in span_table(records)}
        assert rows["leaf"]["count"] == 2
        assert rows["leaf"]["wall_s"] == 3.0
        assert rows["root"]["self_s"] == 2.0

    def test_sorted_by_descending_self_time(self):
        records = [
            _record("small", 0, 2, 1, 1.0),
            _record("big", 1, 2, 1, 6.0),
            _record("root", 2, -1, 0, 8.0),
        ]
        assert [row["name"] for row in span_table(records)] == [
            "big",
            "root",
            "small",
        ]

    def test_clock_skew_never_goes_negative(self):
        # Children measured longer than their parent (clock granularity)
        # must clamp the parent's self time at zero, not below.
        records = [
            _record("child", 0, 1, 1, 5.0),
            _record("root", 1, -1, 0, 4.0),
        ]
        rows = {row["name"]: row for row in span_table(records)}
        assert rows["root"]["self_s"] == 0.0

    def test_empty_records(self):
        assert span_table([]) == []


class TestFunctionTable:
    def test_rows_from_pstats_mapping(self):
        stats = {
            ("/x/mod.py", 10, "hot"): (3, 3, 0.9, 1.2, {}),
            ("/x/mod.py", 20, "cool"): (1, 1, 0.1, 0.1, {}),
        }
        rows = function_table(stats, top=10)
        assert rows[0]["function"] == "mod.py:10:hot"
        assert rows[0]["calls"] == 3
        assert rows[0]["self_s"] == 0.9
        assert rows[0]["cum_s"] == 1.2

    def test_top_truncates(self):
        stats = {
            ("/x/mod.py", i, f"f{i}"): (1, 1, float(i), float(i), {})
            for i in range(30)
        }
        assert len(function_table(stats, top=5)) == 5
