"""The Profiler end to end: Session runs, artifacts, off-by-default.

The contract under test is the tentpole's null-default guarantee --
attaching a profiler changes artifacts only inside ``--profile-out``,
never the run's trace or metrics when disabled -- plus the two
acceptance properties: ``stage1.mwis`` dominates a two-stage profile's
self time, and same-seed runs show zero deterministic-counter drift.
"""

from __future__ import annotations

import os

from repro.obs import MetricsRegistry, Recorder, use_recorder
from repro.prof import (
    PROFILE_COLLAPSED,
    PROFILE_JSON,
    PROFILE_SPEEDSCOPE,
    Profiler,
    diff_profiles,
    format_top,
    load_profile,
)
from repro.run.session import Session
from repro.run.spec import ProfileSpec, RunSpec


def _profiled_toy(tmp_path, name):
    out = str(tmp_path / name)
    spec = RunSpec(
        command="toy", profile=ProfileSpec(profile_out=out, memory=False)
    )
    Session(spec).run()
    return out


class TestSessionIntegration:
    def test_artifacts_written_and_parse(self, tmp_path, capsys):
        out = _profiled_toy(tmp_path, "prof")
        capsys.readouterr()
        for artifact in (PROFILE_JSON, PROFILE_COLLAPSED, PROFILE_SPEEDSCOPE):
            assert os.path.exists(os.path.join(out, artifact))
        payload = load_profile(out)
        assert payload["meta"]["command"] == "toy"
        assert "spec_hash" in payload["meta"]
        assert payload["functions"]  # cProfile ran
        assert payload["allocs"] == []  # memory=False
        assert sum(payload["counters"].values()) > 0

    def test_mwis_is_the_dominant_phase(self, tmp_path, capsys):
        payload = load_profile(_profiled_toy(tmp_path, "prof"))
        capsys.readouterr()
        top = format_top(payload, limit=3, section="spans")
        assert "stage1.mwis" in top[1]  # first data row = most self time
        assert payload["spans"][0]["name"] == "stage1.mwis"

    def test_same_seed_runs_have_zero_counter_drift(self, tmp_path, capsys):
        first = load_profile(_profiled_toy(tmp_path, "a"))
        second = load_profile(_profiled_toy(tmp_path, "b"))
        capsys.readouterr()
        assert diff_profiles(first, second)["counter_drift"] == []


class TestNullDefault:
    def test_unprofiled_metrics_never_see_cost_counters(self, capsys):
        # Kernels accumulate into their module dicts unconditionally,
        # but nothing reaches the metrics registry unless the profiler
        # flushes -- the profiling-off byte-identity guarantee.
        spec = RunSpec(command="toy")
        registry = MetricsRegistry()
        Session(spec, recorder=Recorder(metrics=registry)).run()
        capsys.readouterr()
        counters = registry.snapshot()["counters"]
        assert counters  # the run itself recorded ordinary metrics
        assert not [name for name in counters if name.endswith("_ops")]

    def test_disabled_spec_builds_no_profiler(self):
        from repro.run.session import build_profiler

        assert build_profiler(None, Recorder()) is None
        assert build_profiler(ProfileSpec(), Recorder()) is None


class TestProfilerUnit:
    def test_context_manager_writes_on_clean_exit(self, tmp_path):
        out = str(tmp_path / "ctx")
        from repro.obs.spans import SpanTracer

        spec = ProfileSpec(profile_out=out, cprofile=False, memory=False)
        registry = MetricsRegistry()
        recorder = Recorder(metrics=registry, spans=SpanTracer())
        with Profiler(spec, recorder):
            with use_recorder(recorder):
                with recorder.span("work"):
                    pass
        payload = load_profile(out)
        assert payload["functions"] == [] and payload["allocs"] == []
        assert [row["name"] for row in payload["spans"]] == ["work"]

    def test_stop_flushes_counters_into_metrics(self):
        registry = MetricsRegistry()
        recorder = Recorder(metrics=registry)
        profiler = Profiler(
            ProfileSpec(profile_out="unused", cprofile=False, memory=False),
            recorder,
        )
        profiler.start()
        from repro.interference.bitset import COST_COUNTERS

        COST_COUNTERS["bitset.heap_pop_ops"] += 3
        profiler.stop()
        assert profiler.payload["counters"]["bitset.heap_pop_ops"] == 3
        assert (
            registry.snapshot()["counters"]["bitset.heap_pop_ops"] == 3
        )
