"""Collapsed-stack and speedscope exporters over span events.

These consume the same JSONL span events the trace writer emits
(finish-order, ``parent`` indexing into the span-only sublist), so the
fixtures are hand-built streams mirroring a two-stage run's shape.
"""

from __future__ import annotations

import json

from repro.trace.export import to_collapsed, to_speedscope


def _span(name, parent, depth, wall):
    return {
        "event": "span",
        "name": name,
        "parent": parent,
        "depth": depth,
        "wall_s": wall,
        "cpu_s": wall,
        "start_s": 0.0,
    }


def _two_stage_events():
    # Finish order: children before parents, exactly as the tracer
    # records them.  Indices: mwis=0, mwis=1, stage1=2, stage2=3, root=4.
    return [
        {"event": "run_started", "kind": "two_stage"},
        _span("stage1.mwis", 2, 2, 0.004),
        _span("stage1.mwis", 2, 2, 0.006),
        _span("stage1", 4, 1, 0.012),
        _span("stage2", 4, 1, 0.003),
        _span("two_stage", -1, 0, 0.016),
    ]


class TestCollapsed:
    def test_stacks_carry_self_time_in_microseconds(self):
        lines = dict(
            line.rsplit(" ", 1)
            for line in to_collapsed(_two_stage_events()).splitlines()
        )
        assert lines == {
            "two_stage;stage1;stage1.mwis": "10000",
            "two_stage;stage1": "2000",
            "two_stage;stage2": "3000",
            "two_stage": "1000",
        }

    def test_output_is_sorted_and_newline_terminated(self):
        text = to_collapsed(_two_stage_events())
        assert text.endswith("\n")
        assert text.splitlines() == sorted(text.splitlines())

    def test_non_span_events_ignored_and_empty_is_empty(self):
        assert to_collapsed([]) == ""
        assert to_collapsed([{"event": "round", "index": 1}]) == ""

    def test_deterministic_across_calls(self):
        assert to_collapsed(_two_stage_events()) == to_collapsed(
            _two_stage_events()
        )


class TestSpeedscope:
    def test_schema_shape(self):
        doc = to_speedscope(_two_stage_events())
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        profile = doc["profiles"][doc["activeProfileIndex"]]
        assert profile["type"] == "evented"
        assert profile["unit"] == "seconds"
        # Round-trips through JSON (the artifact is a .json file).
        assert json.loads(json.dumps(doc)) == doc

    def test_events_are_balanced_and_nested(self):
        profile = to_speedscope(_two_stage_events())["profiles"][0]
        depth = 0
        last_at = profile["startValue"]
        for event in profile["events"]:
            assert event["at"] >= last_at  # monotonically ordered
            last_at = event["at"]
            depth += 1 if event["type"] == "O" else -1
            assert depth >= 0
        assert depth == 0
        assert profile["endValue"] == profile["events"][-1]["at"]

    def test_layout_synthesised_from_tree_not_timestamps(self):
        shifted = _two_stage_events()
        for event in shifted:
            if event.get("event") == "span":
                event["start_s"] = 12345.0  # arbitrary real clock
        assert to_speedscope(shifted) == to_speedscope(_two_stage_events())

    def test_frames_deduplicate_repeated_spans(self):
        frames = to_speedscope(_two_stage_events())["shared"]["frames"]
        names = [frame["name"] for frame in frames]
        assert names.count("stage1.mwis") == 1
