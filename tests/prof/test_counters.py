"""Deterministic kernel cost counters: reset, snapshot, flush, drift.

The counters are machine-independent operation counts accumulated in
the hot kernels' module-level ``COST_COUNTERS`` dicts.  Two same-seed
runs must produce identical snapshots (the property the perf gate's
attribution diff is built on), and flushing into a metrics registry
must be a no-op when the registry is disabled -- the profiling-off
byte-identity guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.core.deferred_acceptance import deferred_acceptance
from repro.obs import MetricsRegistry
from repro.prof import (
    flush_cost_counters,
    reset_cost_counters,
    snapshot_cost_counters,
)
from repro.workloads.scenarios import paper_simulation_market


def _market():
    return paper_simulation_market(30, 4, np.random.default_rng([9, 30]))


def _run_stage1():
    reset_cost_counters()
    deferred_acceptance(_market(), record_trace=False)
    return snapshot_cost_counters()


class TestLifecycle:
    def test_reset_zeroes_every_counter(self):
        _run_stage1()
        reset_cost_counters()
        assert all(v == 0 for v in snapshot_cost_counters().values())

    def test_snapshot_names_follow_convention(self):
        for name in snapshot_cost_counters():
            component, noun = name.split(".", 1)
            assert component in ("bitset", "soa", "stage1")
            assert noun.endswith("_ops")

    def test_kernel_run_accumulates_counts(self):
        snapshot = _run_stage1()
        assert sum(snapshot.values()) > 0


class TestDeterminism:
    def test_same_seed_runs_have_zero_drift(self):
        first = _run_stage1()
        second = _run_stage1()
        assert first == second

    def test_different_market_changes_counts(self):
        first = _run_stage1()
        reset_cost_counters()
        deferred_acceptance(
            paper_simulation_market(60, 5, np.random.default_rng([10, 60])),
            record_trace=False,
        )
        assert snapshot_cost_counters() != first


class TestFlush:
    def test_flush_emits_only_nonzero_counters(self):
        _run_stage1()
        registry = MetricsRegistry()
        flushed = flush_cost_counters(registry)
        counters = registry.snapshot()["counters"]
        for name, value in flushed.items():
            if value:
                assert counters[name] == value
            else:
                assert name not in counters

    def test_flush_without_registry_still_snapshots(self):
        _run_stage1()
        assert sum(flush_cost_counters(None).values()) > 0

    def test_disabled_registry_is_untouched(self):
        # The byte-identity guarantee: a run without profiling never
        # sees cost counters in its metrics snapshot.
        _run_stage1()

        class Disabled:
            enabled = False

            def counter(self, name):  # pragma: no cover - must not run
                raise AssertionError("flushed into a disabled registry")

        flush_cost_counters(Disabled())
