"""Profile artifacts: write/load round trip, diff verdicts, top tables."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.prof import (
    PROFILE_COLLAPSED,
    PROFILE_JSON,
    PROFILE_SCHEMA_VERSION,
    PROFILE_SPEEDSCOPE,
    diff_profiles,
    format_diff,
    format_top,
    load_profile,
    write_profile,
)


def _payload(counters=None, spans=None):
    return {
        "schema": PROFILE_SCHEMA_VERSION,
        "meta": {"command": "toy"},
        "spans": spans
        or [
            {
                "name": "stage1.mwis",
                "count": 4,
                "wall_s": 0.01,
                "cpu_s": 0.01,
                "self_s": 0.01,
            }
        ],
        "functions": [],
        "allocs": [],
        "counters": counters or {"soa.mwis_iter_ops": 10},
    }


def _events():
    return [
        {
            "event": "span",
            "name": "stage1.mwis",
            "parent": -1,
            "depth": 0,
            "wall_s": 0.01,
            "cpu_s": 0.01,
            "start_s": 0.0,
        }
    ]


class TestWriteLoad:
    def test_writes_all_three_artifacts(self, tmp_path):
        paths = write_profile(str(tmp_path / "out"), _payload(), _events())
        assert paths["profile"].endswith(PROFILE_JSON)
        assert paths["collapsed"].endswith(PROFILE_COLLAPSED)
        assert paths["speedscope"].endswith(PROFILE_SPEEDSCOPE)
        # profile.json loads back equal; speedscope parses as JSON.
        assert load_profile(str(tmp_path / "out")) == _payload()
        with open(paths["speedscope"], encoding="utf-8") as handle:
            assert json.load(handle)["profiles"]

    def test_load_accepts_directory_or_file(self, tmp_path):
        write_profile(str(tmp_path), _payload(), _events())
        by_dir = load_profile(str(tmp_path))
        by_file = load_profile(str(tmp_path / PROFILE_JSON))
        assert by_dir == by_file

    def test_load_rejects_missing_and_non_profile(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_profile(str(tmp_path / "absent"))
        bogus = tmp_path / PROFILE_JSON
        bogus.write_text('{"not": "a profile"}', encoding="utf-8")
        with pytest.raises(ObservabilityError, match="not a profile"):
            load_profile(str(tmp_path))

    def test_load_rejects_newer_schema(self, tmp_path):
        payload = _payload()
        payload["schema"] = PROFILE_SCHEMA_VERSION + 1
        (tmp_path / PROFILE_JSON).write_text(
            json.dumps(payload), encoding="utf-8"
        )
        with pytest.raises(ObservabilityError, match="newer"):
            load_profile(str(tmp_path))


class TestDiff:
    def test_identical_counters_mean_no_drift(self):
        diff = diff_profiles(_payload(), _payload())
        assert diff["counter_drift"] == []
        assert "identical" in format_diff(diff)[0]

    def test_counter_drift_is_called_algorithmic(self):
        drifted = _payload(counters={"soa.mwis_iter_ops": 25})
        diff = diff_profiles(_payload(), drifted)
        assert diff["counter_drift"] == [
            {"counter": "soa.mwis_iter_ops", "a": 10, "b": 25}
        ]
        text = "\n".join(format_diff(diff))
        assert "COUNTER DRIFT soa.mwis_iter_ops" in text
        assert "algorithmic" in text

    def test_span_deltas_are_informational(self):
        slower = _payload(
            spans=[
                {
                    "name": "stage1.mwis",
                    "count": 4,
                    "wall_s": 0.02,
                    "cpu_s": 0.02,
                    "self_s": 0.02,
                }
            ]
        )
        diff = diff_profiles(_payload(), slower)
        assert diff["counter_drift"] == []
        (delta,) = diff["span_deltas"]
        assert delta == {
            "name": "stage1.mwis",
            "a_wall_s": 0.01,
            "b_wall_s": 0.02,
        }


class TestTop:
    def test_spans_section_leads_with_dominant_phase(self):
        lines = format_top(_payload(), section="spans")
        assert "stage1.mwis" in lines[1]

    def test_empty_sections_explain_themselves(self):
        empty = {**_payload(), "spans": [], "functions": [], "allocs": []}
        assert format_top(empty, section="spans") == ["(no spans recorded)"]
        assert "cprofile" in format_top(empty, section="functions")[0]
        assert "memory" in format_top(empty, section="allocs")[0]

    def test_unknown_section_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown profile"):
            format_top(_payload(), section="flames")
