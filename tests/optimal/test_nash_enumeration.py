"""Tests for exhaustive Nash-stable enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.market import SpectrumMarket
from repro.core.stability import is_nash_stable, pareto_dominates_for_buyers
from repro.core.two_stage import run_two_stage
from repro.errors import SolverLimitExceeded
from repro.interference.generators import interference_map_from_edge_lists
from repro.optimal.nash_enumeration import (
    buyer_optimal_nash_stable,
    enumerate_feasible_matchings,
    enumerate_nash_stable_matchings,
    price_of_nash_stability,
)
from repro.workloads.scenarios import counterexample_market


def market_of(utilities, per_channel_edges):
    utilities = np.asarray(utilities, dtype=float)
    imap = interference_map_from_edge_lists(utilities.shape[0], per_channel_edges)
    return SpectrumMarket(utilities, imap)


class TestFeasibleEnumeration:
    def test_counts_without_interference(self):
        # 2 buyers x 2 channels, no conflicts: 3 options per buyer = 9.
        market = market_of([[1.0, 2.0], [3.0, 4.0]], [[], []])
        matchings = list(enumerate_feasible_matchings(market))
        assert len(matchings) == 9

    def test_counts_with_full_conflict(self):
        # Both buyers conflict on the single channel: assignments where
        # both hold it are excluded: 4 - 1 = 3.
        market = market_of([[1.0], [1.0]], [[(0, 1)]])
        matchings = list(enumerate_feasible_matchings(market))
        assert len(matchings) == 3

    def test_all_yielded_matchings_feasible(self, market_factory):
        market = market_factory(num_buyers=5, num_channels=2, seed=0)
        for matching in enumerate_feasible_matchings(market):
            assert matching.is_interference_free(market.interference)

    def test_state_limit_guard(self, market_factory):
        market = market_factory(num_buyers=10, num_channels=4, seed=0)
        with pytest.raises(SolverLimitExceeded):
            list(enumerate_feasible_matchings(market, state_limit=10))

    def test_yields_independent_copies(self):
        market = market_of([[1.0]], [[]])
        matchings = list(enumerate_feasible_matchings(market))
        assignments = {m.as_assignment() for m in matchings}
        assert assignments == {(0,), (None,)}


class TestNashEnumeration:
    def test_algorithm_output_is_in_the_stable_set(self, market_factory):
        market = market_factory(num_buyers=6, num_channels=3, seed=4)
        result = run_two_stage(market, record_trace=False)
        stable = list(enumerate_nash_stable_matchings(market))
        assert any(m == result.matching for m in stable)

    def test_every_enumerated_matching_is_stable(self, market_factory):
        market = market_factory(num_buyers=6, num_channels=3, seed=5)
        for matching in enumerate_nash_stable_matchings(market):
            assert is_nash_stable(market, matching)

    def test_empty_matching_is_not_stable_when_channels_open(self):
        market = market_of([[1.0]], [[]])
        stable = list(enumerate_nash_stable_matchings(market))
        assert all(m.num_matched() > 0 for m in stable)


class TestBuyerOptimalFrontier:
    def test_frontier_is_mutually_undominated(self, market_factory):
        market = market_factory(num_buyers=6, num_channels=3, seed=6)
        frontier = buyer_optimal_nash_stable(market)
        assert frontier
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not pareto_dominates_for_buyers(market, a, b)

    def test_counterexample_output_not_on_frontier(self):
        """Section III-D: the algorithm's output is not buyer-optimal."""
        market = counterexample_market()
        result = run_two_stage(market, record_trace=False)
        frontier = buyer_optimal_nash_stable(market)
        assert all(m != result.matching for m in frontier)
        # ...because something on the frontier dominates it.
        assert any(
            pareto_dominates_for_buyers(market, m, result.matching)
            for m in frontier
        )


class TestPriceOfNashStability:
    def test_ratio_bounds(self, market_factory):
        market = market_factory(num_buyers=6, num_channels=3, seed=7)
        ratio, best = price_of_nash_stability(market)
        assert 0.0 < ratio <= 1.0 + 1e-12
        assert is_nash_stable(market, best)

    def test_counterexample_has_free_stability(self):
        # The counterexample's optimum (27) happens to be Nash-stable.
        market = counterexample_market()
        ratio, best = price_of_nash_stability(market)
        assert ratio == pytest.approx(1.0)
        assert best.social_welfare(market.utilities) == pytest.approx(27.0)

    def test_two_stage_welfare_below_best_stable(self, market_factory):
        market = market_factory(num_buyers=6, num_channels=3, seed=8)
        result = run_two_stage(market, record_trace=False)
        _, best = price_of_nash_stability(market)
        assert result.social_welfare <= best.social_welfare(
            market.utilities
        ) + 1e-9


class TestPairwiseStableEnumeration:
    def test_pairwise_implies_nash(self, market_factory):
        """Pairwise stability is the stronger notion: every pairwise
        stable matching must also be Nash-stable (S = empty set reduces a
        Nash deviation to a blocking pair)."""
        from repro.optimal.nash_enumeration import (
            enumerate_pairwise_stable_matchings,
        )

        market = market_factory(num_buyers=6, num_channels=3, seed=12)
        for matching in enumerate_pairwise_stable_matchings(market):
            assert is_nash_stable(market, matching)

    def test_counterexample_has_pairwise_stable_matchings(self):
        """The Section III-D instance blocks the ALGORITHM's output, but
        pairwise-stable matchings do exist on it (e.g. the optimum)."""
        from repro.core.stability import is_pairwise_stable
        from repro.optimal.nash_enumeration import find_pairwise_stable_matching

        market = counterexample_market()
        best = find_pairwise_stable_matching(market)
        assert best is not None
        assert is_pairwise_stable(market, best)
        assert best.social_welfare(market.utilities) == pytest.approx(27.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_pairwise_stable_matchings_exist_on_paper_workloads(
        self, seed, market_factory
    ):
        from repro.optimal.nash_enumeration import find_pairwise_stable_matching

        market = market_factory(num_buyers=6, num_channels=3, seed=seed)
        assert find_pairwise_stable_matching(market) is not None

    def test_pairwise_stable_welfare_bounded_by_optimum(self, market_factory):
        from repro.optimal.bruteforce import optimal_matching_bruteforce
        from repro.optimal.nash_enumeration import find_pairwise_stable_matching

        market = market_factory(num_buyers=6, num_channels=3, seed=13)
        best = find_pairwise_stable_matching(market)
        optimum = optimal_matching_bruteforce(market)
        assert best.social_welfare(market.utilities) <= optimum.social_welfare(
            market.utilities
        ) + 1e-9
