"""Tests for the greedy, random and fixed-quota-DA baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.market import SpectrumMarket
from repro.interference.generators import interference_map_from_edge_lists
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.optimal.college_admission import fixed_quota_deferred_acceptance
from repro.optimal.greedy import greedy_centralized_matching
from repro.optimal.random_baseline import random_matching


def market_of(utilities, per_channel_edges):
    utilities = np.asarray(utilities, dtype=float)
    imap = interference_map_from_edge_lists(utilities.shape[0], per_channel_edges)
    return SpectrumMarket(utilities, imap)


class TestGreedyBaseline:
    def test_takes_highest_prices_first(self):
        market = market_of([[5.0, 1.0], [4.0, 3.0]], [[(0, 1)], []])
        result = greedy_centralized_matching(market)
        assert result.channel_of(0) == 0  # price 5 granted first
        assert result.channel_of(1) == 1  # blocked on 0, takes 3

    def test_reuses_channels(self):
        market = market_of([[5.0], [4.0], [3.0]], [[(0, 1)]])
        result = greedy_centralized_matching(market)
        assert result.channel_of(0) == 0
        assert result.channel_of(1) is None  # conflicts with 0
        assert result.channel_of(2) == 0  # compatible, reused

    @pytest.mark.parametrize("seed", range(5))
    def test_feasible_and_bounded_by_optimal(self, seed, market_factory):
        market = market_factory(num_buyers=8, num_channels=3, seed=seed)
        greedy = greedy_centralized_matching(market)
        assert greedy.is_interference_free(market.interference)
        best = optimal_matching_branch_and_bound(market).social_welfare(
            market.utilities
        )
        assert greedy.social_welfare(market.utilities) <= best + 1e-9

    def test_skips_zero_prices(self):
        market = market_of([[0.0]], [[]])
        result = greedy_centralized_matching(market)
        assert result.channel_of(0) is None


class TestRandomBaseline:
    def test_feasibility_across_seeds(self, market_factory):
        market = market_factory(num_buyers=15, num_channels=4, seed=1)
        for seed in range(5):
            result = random_matching(market, np.random.default_rng(seed))
            assert result.is_interference_free(market.interference)
            result.assert_consistent()

    def test_deterministic_given_generator_state(self, market_factory):
        market = market_factory(num_buyers=15, num_channels=4, seed=1)
        a = random_matching(market, np.random.default_rng(42))
        b = random_matching(market, np.random.default_rng(42))
        assert a == b

    def test_matches_when_possible(self):
        # One buyer, one clean channel: randomness cannot fail to match.
        market = market_of([[1.0]], [[]])
        result = random_matching(market, np.random.default_rng(0))
        assert result.channel_of(0) == 0


class TestFixedQuotaDA:
    def test_quota_one_is_classic_da(self):
        market = market_of([[5.0, 1.0], [4.0, 3.0]], [[], []])
        result = fixed_quota_deferred_acceptance(market, quota=1)
        assert result.channel_of(0) == 0
        assert result.channel_of(1) == 1

    def test_repair_drops_conflicts(self):
        # Quota 2 admits both buyers onto channel 0, but they interfere:
        # the repair pass must keep only the higher-priced one.
        market = market_of([[5.0], [4.0]], [[(0, 1)]])
        result = fixed_quota_deferred_acceptance(market, quota=2, repair=True)
        assert result.channel_of(0) == 0
        assert result.channel_of(1) is None
        assert result.is_interference_free(market.interference)

    def test_without_repair_output_can_be_infeasible(self):
        market = market_of([[5.0], [4.0]], [[(0, 1)]])
        result = fixed_quota_deferred_acceptance(market, quota=2, repair=False)
        assert not result.is_interference_free(market.interference)

    def test_small_quota_underuses_spectrum(self):
        # Three mutually compatible buyers, quota 1: two stay unmatched.
        market = market_of([[3.0], [2.0], [1.0]], [[]])
        result = fixed_quota_deferred_acceptance(market, quota=1)
        assert result.num_matched() == 1

    def test_invalid_quota(self, market_factory):
        market = market_factory()
        with pytest.raises(ValueError):
            fixed_quota_deferred_acceptance(market, quota=0)

    @pytest.mark.parametrize("quota", [1, 2, 4])
    def test_repaired_output_always_feasible(self, quota, market_factory):
        market = market_factory(num_buyers=12, num_channels=4, seed=3)
        result = fixed_quota_deferred_acceptance(market, quota=quota)
        assert result.is_interference_free(market.interference)
