"""Tests for the LP-relaxation upper bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.market import SpectrumMarket
from repro.core.two_stage import run_two_stage
from repro.interference.generators import interference_map_from_edge_lists
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.optimal.lp_relaxation import lp_relaxation_bound
from repro.workloads.scenarios import toy_example_market


def market_of(utilities, per_channel_edges):
    utilities = np.asarray(utilities, dtype=float)
    imap = interference_map_from_edge_lists(utilities.shape[0], per_channel_edges)
    return SpectrumMarket(utilities, imap)


class TestKnownValues:
    def test_no_conflicts_lp_is_exact(self):
        # Without interference the LP's optimum is integral: everyone takes
        # her best channel.
        market = market_of([[3.0, 1.0], [2.0, 5.0]], [[], []])
        assert lp_relaxation_bound(market) == pytest.approx(8.0)

    def test_triangle_fractional_gap(self):
        # Complete triangle on one channel, unit prices: ILP packs 1 buyer,
        # LP packs x=1/2 each for value 1.5 -- the classic integrality gap.
        market = market_of(
            [[1.0], [1.0], [1.0]],
            [[(0, 1), (0, 2), (1, 2)]],
        )
        assert lp_relaxation_bound(market) == pytest.approx(1.5)

    def test_toy_example_bound(self):
        market = toy_example_market()
        bound = lp_relaxation_bound(market)
        assert bound >= 33.0 - 1e-6  # exact optimum is 33


class TestBoundProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_lp_bounds_exact_optimum(self, seed, market_factory):
        market = market_factory(num_buyers=8, num_channels=3, seed=seed)
        exact = optimal_matching_branch_and_bound(market).social_welfare(
            market.utilities
        )
        assert lp_relaxation_bound(market) >= exact - 1e-6

    @pytest.mark.parametrize("seed", range(5))
    def test_lp_bounds_two_stage_welfare(self, seed, market_factory):
        market = market_factory(num_buyers=20, num_channels=5, seed=seed)
        result = run_two_stage(market, record_trace=False)
        assert lp_relaxation_bound(market) >= result.social_welfare - 1e-6
