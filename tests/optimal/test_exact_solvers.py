"""Tests for the exact optimal-matching solvers (brute force and B&B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.market import SpectrumMarket
from repro.errors import SolverLimitExceeded
from repro.interference.generators import (
    complete_graph,
    interference_map_from_edge_lists,
)
from repro.interference.graph import InterferenceGraph, InterferenceMap
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.optimal.bruteforce import optimal_matching_bruteforce
from repro.workloads.scenarios import toy_example_market

SOLVERS = [optimal_matching_bruteforce, optimal_matching_branch_and_bound]


def market_of(utilities, per_channel_edges):
    utilities = np.asarray(utilities, dtype=float)
    imap = interference_map_from_edge_lists(utilities.shape[0], per_channel_edges)
    return SpectrumMarket(utilities, imap)


class TestKnownOptima:
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_single_assignment(self, solver):
        market = market_of([[3.0, 7.0]], [[], []])
        result = solver(market)
        assert result.channel_of(0) == 1

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_reuse_beats_exclusivity(self, solver):
        # Both buyers fit on channel 0 (no conflict): optimum reuses it.
        market = market_of([[5.0, 1.0], [4.0, 1.0]], [[], []])
        result = solver(market)
        assert result.channel_of(0) == 0
        assert result.channel_of(1) == 0

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_interference_forces_split(self, solver):
        market = market_of([[5.0, 1.0], [4.0, 2.0]], [[(0, 1)], []])
        result = solver(market)
        assert result.channel_of(0) == 0
        assert result.channel_of(1) == 1

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_unmatched_when_nothing_fits(self, solver):
        # One channel, complete conflict: only the best buyer is matched.
        imap = InterferenceMap([complete_graph(3)])
        market = SpectrumMarket(np.array([[1.0], [9.0], [4.0]]), imap)
        result = solver(market)
        assert result.channel_of(1) == 1 - 1  # channel 0
        assert result.channel_of(0) is None
        assert result.channel_of(2) is None

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_toy_example_optimum_is_33(self, solver):
        market = toy_example_market()
        result = solver(market)
        assert result.social_welfare(market.utilities) == pytest.approx(33.0)
        assert result.is_interference_free(market.interference)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_zero_utilities_leave_everyone_unmatched_or_zero(self, solver):
        market = market_of([[0.0], [0.0]], [[]])
        result = solver(market)
        assert result.social_welfare(market.utilities) == 0.0


class TestGuards:
    def test_bruteforce_state_limit(self):
        market = market_of(
            np.ones((10, 3)), [[], [], []]
        )
        with pytest.raises(SolverLimitExceeded):
            optimal_matching_bruteforce(market, state_limit=100)

    def test_branch_and_bound_node_budget(self):
        rngs = np.random.default_rng(3)
        utilities = rngs.random((12, 4))
        imap = interference_map_from_edge_lists(12, [[], [], [], []])
        market = SpectrumMarket(utilities, imap)
        with pytest.raises(SolverLimitExceeded):
            optimal_matching_branch_and_bound(market, node_budget=5)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(12))
    def test_bruteforce_equals_branch_and_bound(self, seed, market_factory):
        market = market_factory(num_buyers=7, num_channels=3, seed=seed)
        bf = optimal_matching_bruteforce(market)
        bb = optimal_matching_branch_and_bound(market)
        assert bf.social_welfare(market.utilities) == pytest.approx(
            bb.social_welfare(market.utilities)
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_exact_output_is_feasible(self, seed, market_factory):
        market = market_factory(num_buyers=7, num_channels=3, seed=seed)
        result = optimal_matching_branch_and_bound(market)
        assert result.is_interference_free(market.interference)
        result.assert_consistent()
