"""Tests for the solver registry: registration, lookup, filtering."""

from __future__ import annotations

import pytest

from repro.engine import (
    Capability,
    Solver,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
    unregister_solver,
)
from repro.engine import registry as registry_module
from repro.errors import SolverError

#: Every builtin backend the engine must expose.
BUILTIN_NAMES = {
    "two_stage",
    "bruteforce",
    "branch_and_bound",
    "greedy",
    "lp_bound",
    "random",
    "college_admission",
    "nash_enumeration",
    "mcafee",
    "distributed",
}


class _FakeSolver:
    def __init__(self, name="fake", capabilities=frozenset({Capability.HEURISTIC})):
        self.name = name
        self.capabilities = capabilities
        self.description = "test stub"

    def solve(self, market, *, recorder=None, config=None):
        raise NotImplementedError


class TestBuiltins:
    def test_all_ten_backends_registered(self):
        assert BUILTIN_NAMES <= set(solver_names())

    def test_names_sorted(self):
        names = solver_names()
        assert names == sorted(names)

    def test_get_solver_returns_protocol_instance(self):
        for name in BUILTIN_NAMES:
            solver = get_solver(name)
            assert isinstance(solver, Solver)
            assert solver.name == name
            assert solver.capabilities
            assert solver.description

    def test_lazy_loading_flag(self):
        # Any earlier lookup in the process has loaded the builtins; the
        # guard must never re-import them.
        assert registry_module._builtins_loaded


class TestCapabilityFiltering:
    def test_exact_filter(self):
        exact = set(solver_names(Capability.EXACT))
        assert {"bruteforce", "branch_and_bound", "nash_enumeration"} <= exact
        assert "two_stage" not in exact

    def test_string_capability_accepted(self):
        assert solver_names("exact") == solver_names(Capability.EXACT)
        assert solver_names("bound_only") == ["lp_bound"]

    def test_decentralized_filter(self):
        assert solver_names(Capability.DECENTRALIZED) == ["distributed"]

    def test_multi_capability_solver_appears_in_both(self):
        assert "distributed" in solver_names(Capability.HEURISTIC)
        assert "distributed" in solver_names(Capability.DECENTRALIZED)

    def test_invalid_capability_rejected(self):
        with pytest.raises(ValueError):
            list_solvers("telepathic")


class TestRegistration:
    def test_register_and_unregister(self):
        solver = _FakeSolver("temp_solver")
        try:
            assert register_solver(solver) is solver
            assert get_solver("temp_solver") is solver
        finally:
            unregister_solver("temp_solver")
        assert "temp_solver" not in solver_names()

    def test_duplicate_name_rejected(self):
        with pytest.raises(SolverError, match="already registered"):
            register_solver(_FakeSolver("two_stage"))
        # The builtin must not have been clobbered by the failed attempt.
        assert get_solver("two_stage").description != "test stub"

    def test_replace_true_overrides(self):
        original = get_solver("greedy")
        override = _FakeSolver("greedy")
        try:
            register_solver(override, replace=True)
            assert get_solver("greedy") is override
        finally:
            register_solver(original, replace=True)
        assert get_solver("greedy") is original

    def test_unusable_name_rejected(self):
        with pytest.raises(SolverError, match="no usable string name"):
            register_solver(_FakeSolver(name=""))
        with pytest.raises(SolverError, match="no usable string name"):
            register_solver(_FakeSolver(name=None))

    def test_unregister_missing_is_noop(self):
        unregister_solver("never_registered")


class TestLookupErrors:
    def test_unknown_solver_message_lists_available(self):
        with pytest.raises(SolverError, match="unknown solver 'nope'") as info:
            get_solver("nope")
        assert "two_stage" in str(info.value)

    def test_registry_solve_convenience(self, toy_market):
        report = registry_module.solve("greedy", toy_market)
        assert report.solver == "greedy"
        assert report.social_welfare > 0
