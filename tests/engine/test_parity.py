"""Adapter parity: registry dispatch is byte-identical to direct calls.

The acceptance bar for the engine refactor: for every backend,
``engine.get_solver(name).solve(market)`` must return the same matching
and the exact same welfare float as invoking the backend module
directly.  Any drift here means an adapter grew algorithmic logic of its
own, which is exactly what the engine design forbids.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.auction.mcafee import mcafee_double_auction
from repro.core.matching import Matching
from repro.core.two_stage import run_two_stage
from repro.distributed.protocol import run_distributed_matching
from repro.engine import Capability, SolveReport, get_solver
from repro.errors import SolverError
from repro.obs import ListEventSink, Recorder
from repro.optimal.branch_and_bound import (
    DEFAULT_NODE_BUDGET,
    optimal_matching_branch_and_bound,
)
from repro.optimal.bruteforce import (
    DEFAULT_BRUTEFORCE_STATE_LIMIT,
    optimal_matching_bruteforce,
)
from repro.optimal.college_admission import fixed_quota_deferred_acceptance
from repro.optimal.greedy import greedy_centralized_matching
from repro.optimal.lp_relaxation import lp_relaxation_bound
from repro.optimal.nash_enumeration import price_of_nash_stability
from repro.optimal.random_baseline import random_matching

#: Seeds for the small parity markets (exact solvers must stay within
#: their state limits, so these stay tiny).
SMALL_SEEDS = (0, 7, 21)


def small_market(market_factory, seed):
    return market_factory(num_buyers=5, num_channels=3, seed=seed)


def assert_same_matching(report: SolveReport, matching: Matching) -> None:
    assert report.matching.as_assignment() == matching.as_assignment()


class TestHeuristicParity:
    def test_two_stage(self, market_factory):
        for seed in SMALL_SEEDS:
            market = market_factory(num_buyers=20, num_channels=4, seed=seed)
            direct = run_two_stage(market, record_trace=False)
            report = get_solver("two_stage").solve(market)
            assert_same_matching(report, direct.matching)
            assert report.social_welfare == direct.social_welfare
            assert report.metadata["welfare_stage1"] == direct.welfare_stage1
            assert report.metadata["welfare_phase2"] == direct.welfare_phase2
            assert report.metadata["total_rounds"] == direct.total_rounds

    def test_greedy(self, market_factory):
        for seed in SMALL_SEEDS:
            market = market_factory(num_buyers=15, num_channels=4, seed=seed)
            direct = greedy_centralized_matching(market)
            report = get_solver("greedy").solve(market)
            assert_same_matching(report, direct)
            assert report.social_welfare == direct.social_welfare(market.utilities)

    def test_random_seed_config(self, market_factory):
        market = market_factory(num_buyers=15, num_channels=4, seed=3)
        for seed in (0, 5, [601, 2]):
            direct = random_matching(market, np.random.default_rng(seed))
            report = get_solver("random").solve(market, config={"seed": seed})
            assert_same_matching(report, direct)

    def test_college_admission_quota(self, market_factory):
        market = market_factory(num_buyers=15, num_channels=4, seed=4)
        for quota in (1, 4):
            direct = fixed_quota_deferred_acceptance(market, quota)
            report = get_solver("college_admission").solve(
                market, config={"quota": quota}
            )
            assert_same_matching(report, direct)
            assert report.metadata["quota"] == quota

    def test_mcafee(self, market_factory):
        market = market_factory(num_buyers=12, num_channels=4, seed=5)
        utilities = market.utilities
        bids = [
            max(0.0, float(utilities[j].max())) for j in range(market.num_buyers)
        ]
        outcome = mcafee_double_auction(bids, [0.0] * market.num_channels)
        direct = Matching(market.num_channels, market.num_buyers)
        for buyer, channel in zip(outcome.winning_buyers, outcome.winning_sellers):
            direct.match(buyer, channel)
        report = get_solver("mcafee").solve(market)
        assert_same_matching(report, direct)
        assert report.metadata["num_trades"] == outcome.num_trades
        assert report.metadata["buyer_price"] == outcome.buyer_price

    def test_distributed(self, market_factory):
        market = market_factory(num_buyers=10, num_channels=3, seed=6)
        direct = run_distributed_matching(market, seed=0)
        report = get_solver("distributed").solve(market)
        assert_same_matching(report, direct.matching)
        assert report.social_welfare == direct.social_welfare
        assert report.status == direct.status


class TestExactParity:
    def test_bruteforce(self, market_factory):
        for seed in SMALL_SEEDS:
            market = small_market(market_factory, seed)
            direct = optimal_matching_bruteforce(
                market, DEFAULT_BRUTEFORCE_STATE_LIMIT
            )
            report = get_solver("bruteforce").solve(market)
            assert_same_matching(report, direct)
            assert report.social_welfare == direct.social_welfare(market.utilities)

    def test_branch_and_bound(self, market_factory):
        for seed in SMALL_SEEDS:
            market = small_market(market_factory, seed)
            direct = optimal_matching_branch_and_bound(market, DEFAULT_NODE_BUDGET)
            report = get_solver("branch_and_bound").solve(market)
            assert_same_matching(report, direct)
            assert report.social_welfare == direct.social_welfare(market.utilities)

    def test_nash_enumeration(self, market_factory):
        market = small_market(market_factory, 1)
        ratio, direct = price_of_nash_stability(
            market, DEFAULT_BRUTEFORCE_STATE_LIMIT
        )
        report = get_solver("nash_enumeration").solve(market)
        assert_same_matching(report, direct)
        assert report.metadata["price_of_nash_stability"] == ratio


class TestBoundParity:
    def test_lp_bound_value(self, market_factory):
        for seed in SMALL_SEEDS:
            market = market_factory(num_buyers=10, num_channels=3, seed=seed)
            report = get_solver("lp_bound").solve(market)
            assert report.social_welfare == lp_relaxation_bound(market)

    def test_bound_report_shape(self, market_factory):
        market = market_factory(num_buyers=8, num_channels=3, seed=2)
        report = get_solver("lp_bound").solve(market)
        assert report.matching is None
        assert report.num_matched == 0
        assert report.buyer_utilities == ()
        assert report.seller_revenue == ()
        assert report.interference_free is None
        assert report.nash_stable is None
        assert report.metadata["bound"] == report.social_welfare


class TestReportContract:
    def test_report_is_scored_and_frozen(self, toy_market):
        report = get_solver("two_stage").solve(toy_market)
        assert report.solver == "two_stage"
        assert report.status == "ok"
        assert report.social_welfare == pytest.approx(30.0)
        assert report.num_buyers == toy_market.num_buyers
        assert report.matched_fraction == report.num_matched / report.num_buyers
        assert report.interference_free is True
        assert sum(report.buyer_utilities) == pytest.approx(30.0)
        assert sum(report.seller_revenue) == pytest.approx(30.0)
        assert report.wall_time_s > 0
        assert report.cpu_time_s >= 0
        with pytest.raises(AttributeError):
            report.social_welfare = 0.0
        with pytest.raises(TypeError):
            report.metadata["welfare_stage1"] = 0.0

    def test_stability_verdicts_opt_in(self, toy_market):
        plain = get_solver("two_stage").solve(toy_market)
        assert plain.nash_stable is None
        assert plain.individually_rational is None
        checked = get_solver("two_stage").solve(
            toy_market, config={"check_stability": True}
        )
        assert checked.nash_stable is True
        assert checked.individually_rational is True
        assert checked.pairwise_stable is True

    def test_unknown_config_key_rejected(self, toy_market):
        with pytest.raises(SolverError, match="unknown config key"):
            get_solver("greedy").solve(toy_market, config={"quota": 3})
        with pytest.raises(SolverError, match="check_stability"):
            get_solver("two_stage").solve(toy_market, config={"bogus": 1})

    def test_unknown_distributed_policy_rejected(self, toy_market):
        with pytest.raises(SolverError, match="unknown distributed policy"):
            get_solver("distributed").solve(toy_market, config={"policy": "nope"})

    def test_capabilities_match_behaviour(self):
        assert Capability.BOUND_ONLY in get_solver("lp_bound").capabilities
        assert Capability.EXACT in get_solver("bruteforce").capabilities
        assert Capability.DECENTRALIZED in get_solver("distributed").capabilities


class TestObservability:
    def test_dispatch_preserves_backend_events(self, toy_market):
        direct_sink = ListEventSink()
        with Recorder(events=direct_sink) as rec:
            run_two_stage(toy_market, record_trace=False, recorder=rec)

        engine_sink = ListEventSink()
        with Recorder(events=engine_sink) as rec:
            get_solver("two_stage").solve(toy_market, recorder=rec)

        def backend_events(sink):
            return [
                event
                for event in sink.events
                if not event["event"].startswith(("engine.", "span"))
            ]

        def strip_timestamps(events):
            return [
                {k: v for k, v in event.items() if k not in ("ts", "wall_s")}
                for event in events
            ]

        assert strip_timestamps(backend_events(engine_sink)) == strip_timestamps(
            backend_events(direct_sink)
        )

    def test_engine_solve_event_emitted(self, toy_market):
        sink = ListEventSink()
        with Recorder(events=sink) as rec:
            get_solver("greedy").solve(toy_market, recorder=rec)
        engine_events = [e for e in sink.events if e["event"] == "engine.solve"]
        assert len(engine_events) == 1
        assert engine_events[0]["solver"] == "greedy"
        assert engine_events[0]["status"] == "ok"
