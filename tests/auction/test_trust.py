"""Tests for the TRUST-style spectrum double auction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.trust import (
    form_groups_first_fit,
    trust_spectrum_auction,
)
from repro.errors import SolverError
from repro.interference.generators import complete_graph, empty_graph, ring_graph
from repro.interference.graph import InterferenceGraph

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    min_size=1,
    max_size=8,
)
asks_strategy = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    min_size=1,
    max_size=4,
)


@st.composite
def trust_instances(draw):
    values = draw(values_strategy)
    n = len(values)
    possible = [(j, k) for j in range(n) for k in range(j + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    asks = draw(asks_strategy)
    return values, InterferenceGraph(n, edges), asks


class TestGrouping:
    def test_groups_partition_all_buyers(self):
        graph = ring_graph(7)
        groups = form_groups_first_fit(graph)
        flattened = sorted(j for g in groups for j in g)
        assert flattened == list(range(7))

    def test_groups_are_independent_sets(self):
        graph = ring_graph(7)
        for group in form_groups_first_fit(graph):
            assert graph.is_independent(group)

    def test_empty_graph_gives_one_group(self):
        assert len(form_groups_first_fit(empty_graph(5))) == 1

    def test_complete_graph_gives_singletons(self):
        groups = form_groups_first_fit(complete_graph(4))
        assert len(groups) == 4
        assert all(len(g) == 1 for g in groups)

    def test_grouping_is_bid_independent_by_construction(self):
        # Same graph, different values -> same groups (the function does
        # not even receive values).
        graph = ring_graph(6)
        assert form_groups_first_fit(graph) == form_groups_first_fit(graph)


class TestAuctionOutcomes:
    def test_single_group_market_sacrifices_its_only_trade(self):
        # With one group McAfee cannot price without the (k+1)-th bid, so
        # the lone efficient trade is sacrificed -- the truthfulness tax.
        values = [1.0, 2.0, 3.0]
        outcome = trust_spectrum_auction(values, empty_graph(3), [0.0, 4.0])
        assert outcome.group_bids == (3.0,)  # |g| * min = 3 * 1
        assert outcome.winning_buyers() == []
        assert outcome.mcafee.sacrificed

    def test_winning_group_shares_channel_and_price(self):
        # Groups (first-fit): {0, 2} and {1} (edge 0-1).  Group bids:
        # 2 * min(9, 8) = 16 and 7.  Asks (1, 8): k = 1, mid price
        # (7 + 8)/2 = 7.5 clears -> group {0, 2} wins the ask-1 channel
        # and the two members split the 7.5 payment.
        values = [9.0, 7.0, 8.0]
        graph = InterferenceGraph(3, [(0, 1)])
        outcome = trust_spectrum_auction(values, graph, [1.0, 8.0])
        assert outcome.winning_buyers() == [0, 2]
        assert outcome.buyer_welfare(values) == pytest.approx(17.0)
        assert outcome.buyer_payment[0] == pytest.approx(3.75)
        assert outcome.buyer_payment[2] == pytest.approx(3.75)
        assert outcome.buyer_payment[1] == 0.0
        assert outcome.seller_revenue[0] == pytest.approx(7.5)
        assert outcome.seller_revenue[1] == 0.0

    def test_losing_when_ask_exceeds_group_bid(self):
        values = [0.5, 0.5]
        outcome = trust_spectrum_auction(values, empty_graph(2), [9.0])
        assert outcome.winning_buyers() == []
        assert all(p == 0.0 for p in outcome.buyer_payment)

    def test_input_validation(self):
        with pytest.raises(SolverError):
            trust_spectrum_auction([1.0], empty_graph(2), [0.0])
        with pytest.raises(SolverError):
            trust_spectrum_auction([-1.0], empty_graph(1), [0.0])

    def test_interference_splits_buyers_across_channels(self):
        # Two cliques of compatible buyers: ring of 4 -> groups {0,2},{1,3}.
        values = [2.0, 2.0, 2.0, 2.0]
        graph = ring_graph(4)
        outcome = trust_spectrum_auction(values, graph, [0.0, 0.0, 5.0])
        for group_index in outcome.winning_groups:
            group = outcome.groups[group_index]
            assert graph.is_independent(group)
        # Winning groups sit on distinct channels.
        channels = list(outcome.channel_of_group.values())
        assert len(channels) == len(set(channels))


class TestMechanismProperties:
    @given(trust_instances())
    @settings(max_examples=150, deadline=None)
    def test_individual_rationality(self, instance):
        values, graph, asks = instance
        outcome = trust_spectrum_auction(values, graph, asks)
        for j in outcome.winning_buyers():
            assert outcome.buyer_payment[j] <= values[j] + 1e-9
        total_paid = sum(outcome.buyer_payment)
        total_received = sum(outcome.seller_revenue)
        assert total_paid >= total_received - 1e-9  # weak budget balance

    @given(trust_instances(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_buyer_truthfulness(self, instance, data):
        values, graph, asks = instance
        truthful = trust_spectrum_auction(values, graph, asks)
        buyer = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
        lie = data.draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        misreported = list(values)
        misreported[buyer] = lie
        deviated = trust_spectrum_auction(misreported, graph, asks)
        true_value = values[buyer]
        assert deviated.buyer_utility(buyer, true_value) <= (
            truthful.buyer_utility(buyer, true_value) + 1e-9
        )

    @given(trust_instances(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_seller_truthfulness(self, instance, data):
        values, graph, asks = instance
        truthful = trust_spectrum_auction(values, graph, asks)
        seller = data.draw(st.integers(min_value=0, max_value=len(asks) - 1))
        lie = data.draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        misreported = list(asks)
        misreported[seller] = lie
        deviated = trust_spectrum_auction(values, graph, misreported)
        true_cost = asks[seller]
        # Seller utility: revenue - cost if her channel sold.
        assert deviated.seller_utility(seller, true_cost) <= (
            truthful.seller_utility(seller, true_cost) + 1e-9
        )

    @given(trust_instances())
    @settings(max_examples=150, deadline=None)
    def test_winners_form_feasible_allocation(self, instance):
        values, graph, asks = instance
        outcome = trust_spectrum_auction(values, graph, asks)
        for group_index in outcome.winning_groups:
            assert graph.is_independent(outcome.groups[group_index])
