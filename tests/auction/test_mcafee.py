"""Tests for the McAfee double auction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.mcafee import mcafee_double_auction
from repro.errors import SolverError

prices = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestKnownOutcomes:
    def test_no_trade_when_bids_below_asks(self):
        outcome = mcafee_double_auction([1.0, 2.0], [5.0, 6.0])
        assert outcome.num_trades == 0
        assert outcome.buyer_price == outcome.seller_price == 0.0

    def test_mid_price_clears_all_efficient_trades(self):
        # b = (9, 7), s = (1, 8): k = 1; p0 = (7 + 8)/2 = 7.5 -- NOT within
        # [s_1, b_1] = [1, 9]? It is (1 <= 7.5 <= 9): all 1 pair trades at 7.5.
        outcome = mcafee_double_auction([9.0, 7.0], [1.0, 8.0])
        assert outcome.num_trades == 1
        assert not outcome.sacrificed
        assert outcome.buyer_price == pytest.approx(7.5)
        assert outcome.seller_price == pytest.approx(7.5)
        assert outcome.auctioneer_surplus == pytest.approx(0.0)

    def test_sacrifice_branch(self):
        # b = (9, 8), s = (1, 2), plus next pair (3, 7): k = 2 with
        # b_3/s_3 = (3, 7) -> p0 = 5, but 5 > b_2? b_2 = 8 >= 5 and
        # s_2 = 2 <= 5, so mid clears... craft a real sacrifice instead:
        # b = (9, 4), s = (1, 3), next (2, 8) -> p0 = 5; need p0 outside
        # [s_2, b_2] = [3, 4]: 5 > 4 -> sacrifice. One pair trades at
        # (b_2, s_2) = (4, 3).
        outcome = mcafee_double_auction([9.0, 4.0, 2.0], [1.0, 3.0, 8.0])
        assert outcome.sacrificed
        assert outcome.num_trades == 1
        assert outcome.buyer_price == pytest.approx(4.0)
        assert outcome.seller_price == pytest.approx(3.0)
        assert outcome.auctioneer_surplus == pytest.approx(1.0)

    def test_all_pairs_efficient_forces_sacrifice(self):
        # k == min(nB, nS): no (k+1)-th pair exists, so one trade is dropped.
        outcome = mcafee_double_auction([9.0, 8.0], [1.0, 2.0])
        assert outcome.sacrificed
        assert outcome.num_trades == 1
        assert outcome.winning_buyers == (0,)
        assert outcome.winning_sellers == (0,)

    def test_single_efficient_pair_sacrificed_to_nothing(self):
        outcome = mcafee_double_auction([5.0], [1.0])
        assert outcome.num_trades == 0  # k=1, no k+1 -> k-1 = 0 trades

    def test_original_indices_preserved(self):
        # Highest bid is at index 2; cheapest ask at index 1.
        outcome = mcafee_double_auction([2.0, 9.0, 8.0], [4.0, 0.5, 6.0])
        assert set(outcome.winning_buyers) <= {1, 2}
        assert 1 in outcome.winning_sellers or outcome.num_trades == 0

    def test_negative_inputs_rejected(self):
        with pytest.raises(SolverError):
            mcafee_double_auction([-1.0], [0.0])
        with pytest.raises(SolverError):
            mcafee_double_auction([1.0], [-0.5])

    def test_empty_sides(self):
        assert mcafee_double_auction([], [1.0]).num_trades == 0
        assert mcafee_double_auction([1.0], []).num_trades == 0


class TestMechanismProperties:
    @given(
        st.lists(prices, min_size=0, max_size=8),
        st.lists(prices, min_size=0, max_size=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_ir_and_budget_balance(self, bids, asks):
        outcome = mcafee_double_auction(bids, asks)
        # Weak budget balance.
        assert outcome.buyer_price >= outcome.seller_price - 1e-12
        assert outcome.auctioneer_surplus >= -1e-12
        # Individual rationality under truthful reports.
        for j in outcome.winning_buyers:
            assert bids[j] >= outcome.buyer_price - 1e-12
        for i in outcome.winning_sellers:
            assert asks[i] <= outcome.seller_price + 1e-12

    @given(
        st.lists(prices, min_size=1, max_size=6),
        st.lists(prices, min_size=1, max_size=6),
        st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_buyer_truthfulness(self, bids, asks, data):
        """No unilateral buyer misreport strictly improves her utility."""
        truthful = mcafee_double_auction(bids, asks)
        buyer = data.draw(st.integers(min_value=0, max_value=len(bids) - 1))
        lie = data.draw(prices)
        misreported = list(bids)
        misreported[buyer] = lie
        deviated = mcafee_double_auction(misreported, asks)
        true_value = bids[buyer]
        assert deviated.buyer_utility(buyer, true_value) <= (
            truthful.buyer_utility(buyer, true_value) + 1e-9
        )

    @given(
        st.lists(prices, min_size=1, max_size=6),
        st.lists(prices, min_size=1, max_size=6),
        st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_seller_truthfulness(self, bids, asks, data):
        """No unilateral seller misreport strictly improves her utility."""
        truthful = mcafee_double_auction(bids, asks)
        seller = data.draw(st.integers(min_value=0, max_value=len(asks) - 1))
        lie = data.draw(prices)
        misreported = list(asks)
        misreported[seller] = lie
        deviated = mcafee_double_auction(bids, misreported)
        true_cost = asks[seller]
        assert deviated.seller_utility(seller, true_cost) <= (
            truthful.seller_utility(seller, true_cost) + 1e-9
        )

    @given(
        st.lists(prices, min_size=1, max_size=8),
        st.lists(prices, min_size=1, max_size=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_at_most_one_trade_sacrificed(self, bids, asks):
        outcome = mcafee_double_auction(bids, asks)
        sorted_bids = sorted(bids, reverse=True)
        sorted_asks = sorted(asks)
        efficient = 0
        for b, s in zip(sorted_bids, sorted_asks):
            if b >= s:
                efficient += 1
        assert outcome.num_trades >= efficient - 1
        assert outcome.num_trades <= efficient
