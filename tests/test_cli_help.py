"""Flag-inventory snapshot of the CLI after the parent-parser refactor.

The shared option groups (observability, durability, ``--dry-run``) are
now defined once in parent parsers; this snapshot pins every
subcommand's complete flag set so a refactor that accidentally drops a
flag from one subcommand -- the exact regression parent parsers invite
-- fails loudly with the missing flag's name.
"""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser
from repro.run.spec import RUN_COMMANDS

#: Flags the observability parent must contribute to every run command.
OBS_FLAGS = (
    "--trace-out",
    "--metrics",
    "--trace-flush-every",
    "--metrics-out",
    "--serve-metrics",
    "--serve-hold",
    "--slo",
    "--slo-policy",
    "--profile-out",
)

#: Flags the durability parent contributes to checkpointable commands.
DURABILITY_FLAGS = (
    "--checkpoint-dir",
    "--checkpoint-every",
    "--inject-stall-after",
)

#: The full expected flag inventory, per subcommand (options only;
#: positionals are asserted separately).  Keep sorted within each entry.
FLAG_SNAPSHOT = {
    "fig6": ("--csv", "--dry-run", "--jobs", "--json", "--panel",
             "--repetitions", "--seed") + OBS_FLAGS,
    "fig7": ("--csv", "--dry-run", "--jobs", "--json", "--panel",
             "--repetitions", "--seed") + OBS_FLAGS,
    "fig8": ("--csv", "--dry-run", "--jobs", "--json", "--panel",
             "--repetitions", "--seed") + OBS_FLAGS,
    "toy": ("--dry-run",) + OBS_FLAGS,
    "counterexample": ("--dry-run",) + OBS_FLAGS,
    "distributed": ("--buyers", "--dry-run", "--loss", "--policy", "--seed",
                    "--sellers") + OBS_FLAGS,
    "chaos": ("--buyers", "--crash", "--deadline-slots", "--dry-run",
              "--loss", "--on-timeout", "--partition", "--policy", "--seed",
              "--sellers") + OBS_FLAGS + DURABILITY_FLAGS,
    "swaps": ("--buyers", "--counterexample", "--dry-run", "--seed",
              "--sellers") + OBS_FLAGS,
    "dynamic": ("--arrival-rate", "--buyers", "--departure-prob", "--drift",
                "--dry-run", "--epochs", "--seed", "--sellers",
                "--strategy") + OBS_FLAGS + DURABILITY_FLAGS,
    "report": ("--dry-run", "--seed") + OBS_FLAGS,
    "solve": ("--buyers", "--check-stability", "--config", "--dry-run",
              "--scenario", "--seed", "--sellers", "--solver") + OBS_FLAGS,
    "solvers": ("--capability",) + OBS_FLAGS,
    "resume": OBS_FLAGS,
    "supervise": ("--backoff", "--deadline", "--max-retries", "--retry-seed",
                  "--run-dir", "--stall-timeout") + OBS_FLAGS,
    "run": ("--dry-run",),
    "watch": ("--frames", "--interval", "--plain", "--profile"),
}


def _subparsers(parser: argparse.ArgumentParser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices
    raise AssertionError("parser has no subcommands")


def _option_strings(parser: argparse.ArgumentParser):
    flags = set()
    for action in parser._actions:
        if isinstance(action, argparse._HelpAction):
            continue
        flags.update(s for s in action.option_strings if s.startswith("--"))
    return flags


@pytest.fixture(scope="module")
def commands():
    return _subparsers(build_parser())


def test_subcommand_inventory_is_complete(commands):
    assert set(commands) == set(FLAG_SNAPSHOT) | {"trace", "profile"}


@pytest.mark.parametrize("command", sorted(FLAG_SNAPSHOT))
def test_flag_snapshot(commands, command):
    expected = set(FLAG_SNAPSHOT[command])
    actual = _option_strings(commands[command])
    missing = expected - actual
    extra = actual - expected
    assert not missing, f"{command} lost flags: {sorted(missing)}"
    assert not extra, f"{command} grew undocumented flags: {sorted(extra)}"


def test_every_run_command_has_observability_and_dry_run(commands):
    for command in RUN_COMMANDS:
        flags = _option_strings(commands[command])
        assert set(OBS_FLAGS) <= flags, command
        assert "--dry-run" in flags, command


def test_checkpointable_commands_have_durability_flags(commands):
    for command in ("chaos", "dynamic"):
        assert set(DURABILITY_FLAGS) <= _option_strings(commands[command])
    for command in ("toy", "distributed", "solve"):
        assert not set(DURABILITY_FLAGS) & _option_strings(commands[command])


def test_run_subcommand_takes_a_spec_positional(commands):
    positionals = [
        action.dest
        for action in commands["run"]._actions
        if not action.option_strings
    ]
    assert positionals == ["spec"]


def test_trace_subcommands_survive(commands):
    assert set(_subparsers(commands["trace"])) == {
        "summarize",
        "diff",
        "export",
        "causality",
    }


def test_shared_flags_keep_their_defaults(commands):
    # Parent parsers must not perturb the documented defaults.
    chaos = commands["chaos"]
    defaults = {
        action.dest: action.default
        for action in chaos._actions
        if action.option_strings
    }
    assert defaults["trace_flush_every"] == 1
    assert defaults["slo"] == []
    assert defaults["slo_policy"] == "warn"
    assert defaults["checkpoint_every"] == 10
    assert defaults["on_timeout"] == "degrade"


def test_append_flag_defaults_are_not_shared_between_parses(commands):
    # Appending to a shared default list would leak --slo values across
    # parses through the parent parser; the append action must copy.
    parser = build_parser()
    first = parser.parse_args(["toy", "--slo", "drop_rate<0.5"])
    second = build_parser().parse_args(["toy"])
    assert first.slo == ["drop_rate<0.5"]
    assert second.slo == []
