"""Tests for the ASCII visualisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.visualization import (
    render_deployment_map,
    render_interference_summary,
    render_matching_table,
)
from repro.core.matching import Matching
from repro.core.two_stage import run_two_stage
from repro.errors import MarketConfigurationError
from repro.workloads.scenarios import paper_simulation_market, toy_example_market


class TestDeploymentMap:
    def test_dimensions_and_border(self):
        locations = np.array([[5.0, 5.0]])
        art = render_deployment_map(locations, 10.0, width=20, height=8)
        lines = art.splitlines()
        assert len(lines) == 10  # border + 8 rows + border
        assert lines[0] == "+" + "-" * 20 + "+"
        assert all(line.startswith("|") and line.endswith("|") for line in lines[1:-1])

    def test_unmatched_marker(self):
        locations = np.array([[5.0, 5.0]])
        art = render_deployment_map(locations, 10.0)
        assert "." in art

    def test_channel_letters_and_legend(self):
        locations = np.array([[2.0, 2.0], [8.0, 8.0]])
        matching = Matching(2, 2)
        matching.match(0, 0)
        matching.match(1, 1)
        art = render_deployment_map(locations, 10.0, matching=matching)
        assert "A" in art and "B" in art
        assert "A=ch0" in art and "B=ch1" in art

    def test_collision_marker(self):
        locations = np.array([[5.0, 5.0], [5.0, 5.0]])
        art = render_deployment_map(locations, 10.0, width=10, height=5)
        assert "*" in art

    def test_corner_points_stay_in_bounds(self):
        locations = np.array([[0.0, 0.0], [10.0, 10.0]])
        art = render_deployment_map(locations, 10.0, width=12, height=6)
        assert art.count(".") == 2

    def test_validation(self):
        with pytest.raises(MarketConfigurationError):
            render_deployment_map(np.ones(3), 10.0)
        with pytest.raises(MarketConfigurationError):
            render_deployment_map(np.ones((2, 2)), 10.0, width=1)


class TestInterferenceSummary:
    def test_rows_per_channel(self):
        market = toy_example_market()
        summary = render_interference_summary(market.interference)
        lines = summary.splitlines()
        assert len(lines) == 1 + market.num_channels
        assert "density" in lines[0]

    def test_edge_counts_rendered(self):
        market = toy_example_market()
        summary = render_interference_summary(market.interference)
        # channel a (0) has 2 edges, channel b (1) has 3, channel c (2) has 1
        rows = summary.splitlines()[1:]
        assert "2" in rows[0].split()[1]
        assert rows[1].split()[1] == "3"
        assert rows[2].split()[1] == "1"


class TestMatchingTable:
    def test_toy_example_table(self):
        market = toy_example_market()
        result = run_two_stage(market, record_trace=False)
        table = render_matching_table(market, result.matching)
        assert "buyer3" in table
        assert "unmatched (0): -" in table
        # Welfare pieces appear as per-channel revenues.
        assert "10.0000" in table  # seller b's revenue (buyer3 alone)

    def test_unmatched_listing(self, market_factory):
        market = market_factory(num_buyers=6, num_channels=2, seed=3)
        empty = Matching(market.num_channels, market.num_buyers)
        table = render_matching_table(market, empty)
        assert "unmatched (6):" in table

    def test_long_member_lists_truncated(self):
        market = paper_simulation_market(40, 2, np.random.default_rng(0))
        result = run_two_stage(market, record_trace=False)
        table = render_matching_table(market, result.matching)
        for line in table.splitlines():
            assert len(line) < 100
