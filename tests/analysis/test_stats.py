"""Tests for the statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import summarize
from repro.errors import SpectrumMatchingError


class TestSummarize:
    def test_single_sample(self):
        stats = summarize([3.0])
        assert stats.mean == 3.0
        assert stats.std == 0.0
        assert stats.count == 1
        assert stats.ci_low == stats.ci_high == 3.0

    def test_constant_sample(self):
        stats = summarize([2.0, 2.0, 2.0])
        assert stats.mean == 2.0
        assert stats.std == 0.0
        assert stats.ci_halfwidth == 0.0

    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert stats.count == 4
        assert stats.ci_low < 2.5 < stats.ci_high

    def test_interval_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(size=10))
        large = summarize(rng.normal(size=1000))
        assert large.ci_halfwidth < small.ci_halfwidth

    def test_interval_contains_mean_roughly_95_percent(self):
        rng = np.random.default_rng(1)
        hits = 0
        trials = 200
        for _ in range(trials):
            stats = summarize(rng.normal(loc=5.0, size=15))
            if stats.ci_low <= 5.0 <= stats.ci_high:
                hits += 1
        assert hits / trials > 0.88  # 95% nominal, generous slack

    def test_empty_sample_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            summarize([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            summarize([1.0, 2.0], confidence=1.0)
