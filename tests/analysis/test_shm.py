"""Shared-memory array transport: lifecycle, caching, leak hygiene."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.analysis import shm
from repro.analysis.shm import (
    SharedArrayBundle,
    attach,
    clear_attach_cache,
)
from repro.errors import SpectrumMatchingError

SHM_DIR = "/dev/shm"


def _segment_files(bundle: SharedArrayBundle):
    return [
        os.path.join(SHM_DIR, spec.shm_name.lstrip("/"))
        for _, spec in bundle.manifest.segments
    ]


@pytest.fixture(autouse=True)
def _clean_attach_cache():
    clear_attach_cache()
    yield
    clear_attach_cache()


class TestBundleLifecycle:
    def test_roundtrip_preserves_values_dtype_shape(self):
        arrays = {
            "matrix": np.arange(12, dtype=np.float64).reshape(3, 4),
            "ids": np.array([5, 7], dtype=np.int32),
            "empty": np.zeros((0,), dtype=np.float64),
        }
        with SharedArrayBundle(arrays) as bundle:
            attached = attach(bundle.manifest)
            assert set(attached) == set(arrays)
            for name, original in arrays.items():
                np.testing.assert_array_equal(attached[name], original)
                assert attached[name].dtype == original.dtype
                assert attached[name].shape == original.shape
            clear_attach_cache()

    def test_attached_views_are_read_only(self):
        with SharedArrayBundle({"a": np.ones(4)}) as bundle:
            view = attach(bundle.manifest)["a"]
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 2.0
            clear_attach_cache()

    def test_empty_bundle_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            SharedArrayBundle({})

    def test_manifest_is_small_and_picklable(self):
        with SharedArrayBundle({"big": np.zeros((512, 512))}) as bundle:
            blob = pickle.dumps(bundle.manifest)
            # The whole point: ~2 MiB of array rides the pipe as a few
            # hundred manifest bytes.
            assert len(blob) < 1024
            assert pickle.loads(blob) == bundle.manifest
            clear_attach_cache()

    def test_close_unlinks_segments(self):
        bundle = SharedArrayBundle({"a": np.ones(8), "b": np.zeros(3)})
        files = _segment_files(bundle)
        assert all(os.path.exists(path) for path in files)
        bundle.close()
        assert bundle.closed
        assert not any(os.path.exists(path) for path in files)
        bundle.close()  # idempotent

    def test_attach_after_close_fails_cleanly(self):
        bundle = SharedArrayBundle({"a": np.ones(2)})
        manifest = bundle.manifest
        bundle.close()
        with pytest.raises(FileNotFoundError):
            attach(manifest)

    def test_gc_finalizer_unlinks_leaked_bundle(self):
        bundle = SharedArrayBundle({"a": np.ones(4)})
        files = _segment_files(bundle)
        del bundle
        assert not any(os.path.exists(path) for path in files)


class TestAttachCache:
    def test_attach_is_cached_per_token(self):
        with SharedArrayBundle({"a": np.arange(3.0)}) as bundle:
            first = attach(bundle.manifest)
            second = attach(bundle.manifest)
            assert first["a"] is second["a"]
            clear_attach_cache()

    def test_new_token_evicts_stale_mappings(self):
        first = SharedArrayBundle({"a": np.ones(2)})
        try:
            attach(first.manifest)
            assert first.token in shm._ATTACHED
            with SharedArrayBundle({"b": np.zeros(2)}) as second:
                attach(second.manifest)
                assert first.token not in shm._ATTACHED
                assert second.token in shm._ATTACHED
                clear_attach_cache()
        finally:
            first.close()
