"""Tests for the experiment harness (scaled-down figure sweeps)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    SweepAxis,
    optimal_comparison_series,
    stage_breakdown_series,
)
from repro.analysis.metrics import evaluate_matching
from repro.core.two_stage import run_two_stage
from repro.errors import SpectrumMatchingError
from repro.workloads.scenarios import toy_example_market


class TestOptimalComparison:
    def test_buyer_sweep_structure(self):
        rows = optimal_comparison_series(
            SweepAxis.BUYERS, [4, 6], num_channels=3, repetitions=4, seed=1
        )
        assert [row.x for row in rows] == [4.0, 6.0]
        for row in rows:
            assert set(row.series) == {
                "welfare_proposed",
                "welfare_optimal",
                "welfare_ratio",
            }
            assert row.measured_srcc is None
            assert row.series["welfare_ratio"].mean <= 1.0 + 1e-9
            assert (
                row.series["welfare_proposed"].mean
                <= row.series["welfare_optimal"].mean + 1e-9
            )

    def test_similarity_sweep_reports_srcc(self):
        rows = optimal_comparison_series(
            SweepAxis.SIMILARITY,
            [0.0, 1.0],
            num_buyers=6,
            num_channels=3,
            repetitions=4,
            seed=2,
        )
        low, high = rows
        assert low.measured_srcc is not None
        assert high.measured_srcc == pytest.approx(1.0)
        assert low.measured_srcc < high.measured_srcc

    def test_bruteforce_and_bnb_agree(self):
        kwargs = dict(num_channels=3, repetitions=3, seed=3)
        bnb = optimal_comparison_series(SweepAxis.BUYERS, [5], **kwargs)
        bf = optimal_comparison_series(
            SweepAxis.BUYERS, [5], use_bruteforce=True, **kwargs
        )
        assert bnb[0].series["welfare_optimal"].mean == pytest.approx(
            bf[0].series["welfare_optimal"].mean
        )

    def test_seed_determinism(self):
        kwargs = dict(num_channels=3, repetitions=3, seed=9)
        a = optimal_comparison_series(SweepAxis.BUYERS, [5], **kwargs)
        b = optimal_comparison_series(SweepAxis.BUYERS, [5], **kwargs)
        assert a[0].series["welfare_proposed"].mean == pytest.approx(
            b[0].series["welfare_proposed"].mean
        )

    def test_missing_fixed_dimension_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            optimal_comparison_series(SweepAxis.BUYERS, [5], repetitions=1)
        with pytest.raises(SpectrumMatchingError):
            optimal_comparison_series(SweepAxis.SELLERS, [3], repetitions=1)
        with pytest.raises(SpectrumMatchingError):
            optimal_comparison_series(
                SweepAxis.SIMILARITY, [0.5], num_buyers=5, repetitions=1
            )


class TestStageBreakdown:
    def test_series_and_monotone_welfare(self):
        rows = stage_breakdown_series(
            SweepAxis.BUYERS, [20, 30], num_channels=4, repetitions=3, seed=4
        )
        for row in rows:
            w1 = row.series["welfare_stage1"].mean
            w2 = row.series["welfare_phase1"].mean
            w3 = row.series["welfare_phase2"].mean
            assert w1 <= w2 + 1e-9 <= w3 + 2e-9
            assert row.series["rounds_stage1"].mean >= 1

    def test_seller_sweep(self):
        rows = stage_breakdown_series(
            SweepAxis.SELLERS, [2, 4], num_buyers=25, repetitions=3, seed=5
        )
        # More sellers -> more welfare (paper Fig. 7(b) trend).
        assert (
            rows[1].series["welfare_phase2"].mean
            > rows[0].series["welfare_phase2"].mean
        )


class TestEvaluateMatching:
    def test_full_report_on_toy_example(self):
        market = toy_example_market()
        result = run_two_stage(market)
        report = evaluate_matching(market, result.matching)
        assert report.social_welfare == pytest.approx(30.0)
        assert report.num_matched == 5
        assert report.matched_fraction == 1.0
        assert report.interference_free
        assert report.individually_rational
        assert report.nash_stable
        assert sum(report.seller_revenue) == pytest.approx(30.0)

    def test_stability_skip_flag(self):
        market = toy_example_market()
        result = run_two_stage(market)
        report = evaluate_matching(market, result.matching, check_stability=False)
        assert report.interference_free  # always computed
        assert not report.nash_stable  # skipped -> conservative False
