"""Tests for the experiment harness (scaled-down figure sweeps)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    SweepAxis,
    optimal_comparison_series,
    solver_grid_series,
    stage1_variant_series,
    stage_breakdown_series,
)
from repro.analysis.metrics import evaluate_matching
from repro.core.two_stage import run_two_stage
from repro.errors import SpectrumMatchingError
from repro.workloads.scenarios import toy_example_market


class TestOptimalComparison:
    def test_buyer_sweep_structure(self):
        rows = optimal_comparison_series(
            SweepAxis.BUYERS, [4, 6], num_channels=3, repetitions=4, seed=1
        )
        assert [row.x for row in rows] == [4.0, 6.0]
        for row in rows:
            assert set(row.series) == {
                "welfare_proposed",
                "welfare_optimal",
                "welfare_ratio",
            }
            assert row.measured_srcc is None
            assert row.series["welfare_ratio"].mean <= 1.0 + 1e-9
            assert (
                row.series["welfare_proposed"].mean
                <= row.series["welfare_optimal"].mean + 1e-9
            )

    def test_similarity_sweep_reports_srcc(self):
        rows = optimal_comparison_series(
            SweepAxis.SIMILARITY,
            [0.0, 1.0],
            num_buyers=6,
            num_channels=3,
            repetitions=4,
            seed=2,
        )
        low, high = rows
        assert low.measured_srcc is not None
        assert high.measured_srcc == pytest.approx(1.0)
        assert low.measured_srcc < high.measured_srcc

    def test_bruteforce_and_bnb_agree(self):
        kwargs = dict(num_channels=3, repetitions=3, seed=3)
        bnb = optimal_comparison_series(SweepAxis.BUYERS, [5], **kwargs)
        bf = optimal_comparison_series(
            SweepAxis.BUYERS, [5], solver="bruteforce", **kwargs
        )
        assert bnb[0].series["welfare_optimal"].mean == pytest.approx(
            bf[0].series["welfare_optimal"].mean
        )

    def test_seed_determinism(self):
        kwargs = dict(num_channels=3, repetitions=3, seed=9)
        a = optimal_comparison_series(SweepAxis.BUYERS, [5], **kwargs)
        b = optimal_comparison_series(SweepAxis.BUYERS, [5], **kwargs)
        assert a[0].series["welfare_proposed"].mean == pytest.approx(
            b[0].series["welfare_proposed"].mean
        )

    def test_missing_fixed_dimension_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            optimal_comparison_series(SweepAxis.BUYERS, [5], repetitions=1)
        with pytest.raises(SpectrumMatchingError):
            optimal_comparison_series(SweepAxis.SELLERS, [3], repetitions=1)
        with pytest.raises(SpectrumMatchingError):
            optimal_comparison_series(
                SweepAxis.SIMILARITY, [0.5], num_buyers=5, repetitions=1
            )


class TestStageBreakdown:
    def test_series_and_monotone_welfare(self):
        rows = stage_breakdown_series(
            SweepAxis.BUYERS, [20, 30], num_channels=4, repetitions=3, seed=4
        )
        for row in rows:
            w1 = row.series["welfare_stage1"].mean
            w2 = row.series["welfare_phase1"].mean
            w3 = row.series["welfare_phase2"].mean
            assert w1 <= w2 + 1e-9 <= w3 + 2e-9
            assert row.series["rounds_stage1"].mean >= 1

    def test_seller_sweep(self):
        rows = stage_breakdown_series(
            SweepAxis.SELLERS, [2, 4], num_buyers=25, repetitions=3, seed=5
        )
        # More sellers -> more welfare (paper Fig. 7(b) trend).
        assert (
            rows[1].series["welfare_phase2"].mean
            > rows[0].series["welfare_phase2"].mean
        )


class TestEvaluateMatching:
    def test_full_report_on_toy_example(self):
        market = toy_example_market()
        result = run_two_stage(market)
        report = evaluate_matching(market, result.matching)
        assert report.social_welfare == pytest.approx(30.0)
        assert report.num_matched == 5
        assert report.matched_fraction == 1.0
        assert report.interference_free
        assert report.individually_rational
        assert report.nash_stable
        assert sum(report.seller_revenue) == pytest.approx(30.0)

    def test_stability_skip_flag(self):
        market = toy_example_market()
        result = run_two_stage(market)
        report = evaluate_matching(market, result.matching, check_stability=False)
        assert report.interference_free  # always computed
        assert not report.nash_stable  # skipped -> conservative False


class TestSolverSelection:
    def test_use_bruteforce_warns_deprecation_exactly_once(self):
        with pytest.warns(DeprecationWarning, match="use_bruteforce= is deprecated") as record:
            optimal_comparison_series(
                SweepAxis.BUYERS, [4], num_channels=3, repetitions=2, seed=6,
                use_bruteforce=True,
            )
        deprecations = [
            w for w in record if issubclass(w.category, DeprecationWarning)
        ]
        # One warning per call, not one per repetition/market: the flag is
        # resolved once, up front, through EngineSpec.from_use_bruteforce.
        assert len(deprecations) == 1

    def test_solver_name_equals_deprecated_flag(self):
        kwargs = dict(num_channels=3, repetitions=3, seed=7)
        named = optimal_comparison_series(
            SweepAxis.BUYERS, [5], solver="bruteforce", **kwargs
        )
        with pytest.warns(DeprecationWarning):
            flagged = optimal_comparison_series(
                SweepAxis.BUYERS, [5], use_bruteforce=True, **kwargs
            )
        assert named[0].series["welfare_optimal"].mean == pytest.approx(
            flagged[0].series["welfare_optimal"].mean
        )

    def test_conflicting_selection_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SpectrumMatchingError, match="conflicting"):
                optimal_comparison_series(
                    SweepAxis.BUYERS, [4], num_channels=3, repetitions=1,
                    seed=8, solver="branch_and_bound", use_bruteforce=True,
                )

    def test_unknown_solver_fails_actionably(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError, match="unknown solver"):
            optimal_comparison_series(
                SweepAxis.BUYERS, [4], num_channels=3, repetitions=1,
                seed=8, solver="nope",
            )


class TestSolverGrid:
    def test_grid_series_per_solver(self):
        rows = solver_grid_series(
            SweepAxis.BUYERS, [6, 8], ["two_stage", "greedy", "lp_bound"],
            num_channels=3, repetitions=3, seed=10,
        )
        assert [row.x for row in rows] == [6.0, 8.0]
        for row in rows:
            assert set(row.series) == {
                "welfare_two_stage", "welfare_greedy", "welfare_lp_bound",
            }
            # The LP bound dominates any feasible matching's welfare.
            assert (
                row.series["welfare_two_stage"].mean
                <= row.series["welfare_lp_bound"].mean + 1e-9
            )

    def test_grid_accepts_solver_configs(self):
        rows = solver_grid_series(
            SweepAxis.BUYERS, [6], ["college_admission", "random"],
            num_channels=3, repetitions=2, seed=11,
            solver_configs={"college_admission": {"quota": 2}},
        )
        assert set(rows[0].series) == {
            "welfare_college_admission", "welfare_random",
        }

    def test_grid_requires_a_solver(self):
        with pytest.raises(SpectrumMatchingError, match="at least one solver"):
            solver_grid_series(
                SweepAxis.BUYERS, [6], [], num_channels=3, repetitions=1
            )

    def test_grid_matches_direct_two_stage(self):
        from repro.analysis.experiments import _rng_for
        from repro.workloads.scenarios import paper_simulation_market

        rows = solver_grid_series(
            SweepAxis.BUYERS, [6], ["two_stage"],
            num_channels=3, repetitions=1, seed=12,
        )
        rng = _rng_for(SweepAxis.BUYERS, 12, 0, 0)
        market = paper_simulation_market(6, 3, rng)
        direct = run_two_stage(market, record_trace=False)
        assert rows[0].series["welfare_two_stage"].mean == pytest.approx(
            direct.social_welfare
        )


class TestStageOneVariants:
    """The shared-memory variant sweep: correctness and parity."""

    @pytest.fixture(scope="class")
    def market(self):
        import numpy as np

        from repro.workloads.scenarios import paper_simulation_market

        return paper_simulation_market(40, 4, np.random.default_rng([8, 40]))

    def test_row_structure(self, market):
        rows = stage1_variant_series(market)
        assert len(rows) == 4  # 2 algorithms x 2 guard settings
        assert [(r["algorithm"], r["monotone_guard"]) for r in rows] == [
            ("gwmin", True),
            ("gwmin", False),
            ("gwmin2", True),
            ("gwmin2", False),
        ]
        for row in rows:
            assert row["welfare"] > 0.0
            assert row["matched"] <= market.num_buyers

    def test_serial_equals_parallel(self, market):
        serial = stage1_variant_series(market)
        spread = stage1_variant_series(market, jobs=2)
        assert serial == spread

    def test_variant_matches_direct_stage1(self, market):
        from repro.core.deferred_acceptance import deferred_acceptance

        rows = stage1_variant_series(market, algorithms=["gwmin"], guards=[True])
        direct = deferred_acceptance(market, record_trace=False)
        assert rows[0]["welfare"] == direct.matching.social_welfare(
            market.utilities
        )
        assert rows[0]["rounds"] == direct.num_rounds

    def test_needs_at_least_one_variant(self, market):
        with pytest.raises(SpectrumMatchingError):
            stage1_variant_series(market, algorithms=[])
