"""Tests for table/CSV rendering."""

from __future__ import annotations

import csv
import io

from repro.analysis.experiments import SweepAxis, optimal_comparison_series
from repro.analysis.reporting import (
    format_experiment_rows,
    format_table,
    rows_to_csv,
)


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(["name", "value"], [["alpha", 1.23456], ["b", 2.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "1.2346" in lines[2]
        assert "2.0000" in lines[3]
        # All rows share the same width.
        assert len(set(map(len, lines))) == 1

    def test_wide_cells_stretch_columns(self):
        table = format_table(["h"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in table


class TestExperimentRendering:
    def make_rows(self):
        return optimal_comparison_series(
            SweepAxis.BUYERS, [4, 5], num_channels=3, repetitions=2, seed=0
        )

    def test_format_experiment_rows(self):
        text = format_experiment_rows(
            self.make_rows(),
            ["welfare_proposed", "welfare_ratio"],
            x_label="buyers",
        )
        assert "buyers" in text
        assert "welfare_ratio" in text
        assert len(text.splitlines()) == 4  # header, rule, 2 data rows

    def test_srcc_column_optional(self):
        rows = self.make_rows()
        with_srcc = format_experiment_rows(
            rows, ["welfare_ratio"], include_srcc=True
        )
        assert "srcc" in with_srcc
        assert "-" in with_srcc  # buyer sweep has no SRCC -> placeholder

    def test_csv_round_trip(self):
        rows = self.make_rows()
        text = rows_to_csv(rows, ["welfare_proposed"], x_label="buyers")
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == [
            "buyers",
            "measured_srcc",
            "welfare_proposed_mean",
            "welfare_proposed_std",
        ]
        assert len(parsed) == 3
        assert float(parsed[1][0]) == 4.0
        assert float(parsed[1][2]) > 0.0
