"""Persistent worker pool + shared-memory tasks: reuse, crashes, leaks."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.analysis.parallel as parallel_mod
from repro.analysis.parallel import (
    PERSISTENT_POOL_ENV,
    parallel_map,
    persistent_pool_enabled,
    shutdown_pools,
)

SHM_DIR = "/dev/shm"


def _shm_snapshot():
    try:
        return set(os.listdir(SHM_DIR))
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


@pytest.fixture(autouse=True)
def _fresh_pool_state():
    """Each test starts and ends with no cached pool."""
    shutdown_pools()
    yield
    shutdown_pools()


# Worker functions must live at module level to be picklable.
def _pid(_x: int) -> int:
    return os.getpid()


def _row_sum(index: int, arrays) -> float:
    return float(arrays["matrix"][index].sum())


def _row_sum_checked(index: int, arrays) -> tuple:
    """Row sum plus proof the shared view is read-only in the worker."""
    return (float(arrays["matrix"][index].sum()), arrays["matrix"].flags.writeable)


def _die_once_shared(arg, arrays) -> float:
    """SIGKILL this worker the first time it sees the poison index."""
    index, sentinel = arg
    if index == 2 and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), 9)
    return float(arrays["matrix"][index].sum())


class TestPersistentPool:
    def test_workers_are_reused_across_tasks(self):
        # 16 tasks on 2 workers: without reuse this would need 16
        # processes; the pid set proves each worker served many tasks.
        pids = set(parallel_map(_pid, list(range(16)), jobs=2))
        assert 1 <= len(pids) <= 2

    def test_workers_are_reused_across_calls(self):
        first = set(parallel_map(_pid, list(range(8)), jobs=2))
        second = set(parallel_map(_pid, list(range(8)), jobs=2))
        # Same cached executor -> same worker processes, no re-fork
        # between parallel_map calls.
        assert first & second
        assert parallel_mod._POOL is not None

    def test_worker_count_change_rebuilds_pool(self):
        parallel_map(_pid, [0, 1], jobs=2)
        pool_two = parallel_mod._POOL
        parallel_map(_pid, [0, 1, 2], jobs=3)
        assert parallel_mod._POOL is not pool_two
        assert parallel_mod._POOL_WORKERS == 3

    def test_env_opt_out_restores_per_call_pools(self, monkeypatch):
        monkeypatch.setenv(PERSISTENT_POOL_ENV, "0")
        assert not persistent_pool_enabled()
        assert parallel_map(_pid, [0, 1, 2, 3], jobs=2)
        # One-shot pools are torn down at the end of the call, never
        # cached.
        assert parallel_mod._POOL is None

    def test_shutdown_pools_is_idempotent(self):
        parallel_map(_pid, [0, 1], jobs=2)
        assert parallel_mod._POOL is not None
        shutdown_pools()
        assert parallel_mod._POOL is None
        shutdown_pools()


class TestSharedMemoryTasks:
    MATRIX = np.arange(20, dtype=np.float64).reshape(5, 4)

    def test_serial_equals_parallel(self):
        shared = {"matrix": self.MATRIX}
        serial = parallel_map(_row_sum, list(range(5)), jobs=1, shared=shared)
        spread = parallel_map(_row_sum, list(range(5)), jobs=2, shared=shared)
        assert serial == spread == [float(row.sum()) for row in self.MATRIX]

    def test_views_read_only_in_both_paths(self):
        shared = {"matrix": self.MATRIX}
        for jobs in (1, 2):
            rows = parallel_map(
                _row_sum_checked, list(range(5)), jobs=jobs, shared=shared
            )
            assert all(not writeable for _, writeable in rows)

    def test_no_leftover_segments_after_sweep(self):
        before = _shm_snapshot()
        parallel_map(
            _row_sum, list(range(5)), jobs=2, shared={"matrix": self.MATRIX}
        )
        assert _shm_snapshot() - before == set()

    def test_sigkilled_worker_recovers_and_leaks_nothing(self, tmp_path):
        # A persistent worker dying mid-sweep must (a) not lose the
        # sweep -- the retry path resubmits the lost tasks to a fresh
        # pool -- and (b) not leak the published segments.
        sentinel = str(tmp_path / "died")
        before = _shm_snapshot()
        items = [(index, sentinel) for index in range(5)]
        results = parallel_map(
            _die_once_shared,
            items,
            jobs=2,
            retry_backoff_s=0.0,
            shared={"matrix": self.MATRIX},
        )
        assert results == [float(row.sum()) for row in self.MATRIX]
        assert os.path.exists(sentinel)
        assert _shm_snapshot() - before == set()

    def test_crash_path_still_unlinks_segments(self, tmp_path):
        # Retry budget exhausted: the sweep fails, but the finally
        # block must still unlink every published segment.
        before = _shm_snapshot()
        items = [(index, str(tmp_path / f"never-{index}")) for index in range(5)]
        with pytest.raises(Exception):
            parallel_map(
                _die_always_shared,
                items,
                jobs=2,
                retries=1,
                retry_backoff_s=0.0,
                shared={"matrix": self.MATRIX},
            )
        assert _shm_snapshot() - before == set()


def _die_always_shared(arg, arrays) -> float:
    index, _sentinel = arg
    if index == 2:
        os.kill(os.getpid(), 9)
    return float(arrays["matrix"][index].sum())
