"""Tests for experiment-result persistence."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import SweepAxis, optimal_comparison_series
from repro.analysis.persistence import (
    dict_to_experiment_rows,
    experiment_rows_to_dict,
    load_rows,
    save_rows,
)
from repro.errors import SpectrumMatchingError


@pytest.fixture(scope="module")
def rows():
    return optimal_comparison_series(
        SweepAxis.BUYERS, [4, 5], num_channels=3, repetitions=3, seed=0
    )


class TestRoundTrip:
    def test_dict_round_trip(self, rows):
        payload = experiment_rows_to_dict(rows, metadata={"note": "test"})
        restored = dict_to_experiment_rows(payload)
        assert len(restored) == len(rows)
        for original, loaded in zip(rows, restored):
            assert loaded.x == original.x
            assert loaded.measured_srcc == original.measured_srcc
            assert set(loaded.series) == set(original.series)
            for name in original.series:
                assert loaded.series[name] == original.series[name]

    def test_file_round_trip(self, rows, tmp_path):
        path = tmp_path / "results.json"
        save_rows(path, rows, metadata={"figure": 6})
        restored = load_rows(path)
        assert restored[0].series["welfare_ratio"].mean == pytest.approx(
            rows[0].series["welfare_ratio"].mean
        )

    def test_metadata_preserved_on_disk(self, rows, tmp_path):
        path = tmp_path / "results.json"
        save_rows(path, rows, metadata={"figure": 6, "panel": "a"})
        payload = json.loads(path.read_text())
        assert payload["metadata"] == {"figure": 6, "panel": "a"}
        assert payload["format_version"] == 1

    def test_json_is_valid_and_sorted(self, rows, tmp_path):
        path = tmp_path / "results.json"
        save_rows(path, rows)
        payload = json.loads(path.read_text())  # must parse
        assert "rows" in payload


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SpectrumMatchingError):
            load_rows(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {{{")
        with pytest.raises(SpectrumMatchingError):
            load_rows(path)

    def test_wrong_payload_shape(self):
        with pytest.raises(SpectrumMatchingError):
            dict_to_experiment_rows({"something": "else"})

    def test_wrong_version(self, rows):
        payload = experiment_rows_to_dict(rows)
        payload["format_version"] = 999
        with pytest.raises(SpectrumMatchingError):
            dict_to_experiment_rows(payload)


class TestCliIntegration:
    def test_figure_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "fig6a.json"
        assert (
            main(
                [
                    "fig6",
                    "--panel", "a",
                    "--repetitions", "2",
                    "--json", str(path),
                ]
            )
            == 0
        )
        restored = load_rows(path)
        assert len(restored) == 5  # fig 6(a) has five sweep points
        out = capsys.readouterr().out
        assert "saved series to" in out
