"""The parallel sweep runner: determinism, merging, and failure modes."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    SweepAxis,
    optimal_comparison_series,
    stage_breakdown_series,
)
from repro.analysis.parallel import parallel_map, resolve_jobs
from repro.errors import ParallelExecutionError, SpectrumMatchingError
from repro.obs import MetricsRegistry, Recorder, use_recorder


# Worker functions must live at module level to be picklable.
def _square(x: int) -> int:
    return x * x


def _explode(x: int) -> int:
    if x == 3:
        raise ValueError(f"worker saw the poison value {x}")
    return x


class TestResolveJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_explicit_count_is_literal(self):
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            resolve_jobs(-2)


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_results_in_submission_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_worker_exception_surfaces_as_clean_error(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            parallel_map(_explode, [1, 2, 3, 4], jobs=2)
        assert "poison value 3" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_serial_path_raises_unwrapped(self):
        # Serial execution keeps the historical behaviour: the original
        # exception propagates, nothing is wrapped.
        with pytest.raises(ValueError):
            parallel_map(_explode, [3], jobs=1)


class TestSweepDeterminism:
    """Sweeps return identical rows for every worker count."""

    _KW = dict(num_channels=3, repetitions=3, seed=11)

    def test_stage_breakdown_serial_equals_parallel(self):
        serial = stage_breakdown_series(SweepAxis.BUYERS, [30, 45], **self._KW)
        parallel = stage_breakdown_series(
            SweepAxis.BUYERS, [30, 45], jobs=2, **self._KW
        )
        assert serial == parallel

    def test_worker_count_independence(self):
        two = stage_breakdown_series(SweepAxis.BUYERS, [30, 45], jobs=2, **self._KW)
        three = stage_breakdown_series(SweepAxis.BUYERS, [30, 45], jobs=3, **self._KW)
        assert two == three

    def test_optimal_comparison_serial_equals_parallel(self):
        kwargs = dict(num_buyers=6, num_channels=3, repetitions=4, seed=2)
        serial = optimal_comparison_series(SweepAxis.SIMILARITY, [0.0, 1.0], **kwargs)
        parallel = optimal_comparison_series(
            SweepAxis.SIMILARITY, [0.0, 1.0], jobs=2, **kwargs
        )
        assert serial == parallel
        assert serial[0].measured_srcc == parallel[0].measured_srcc

    def test_crash_in_worker_is_a_clean_error(self):
        # num_channels=0 makes every repetition's market construction
        # raise inside the worker; the sweep must fail fast with the
        # library's error type instead of hanging or dying opaquely.
        with pytest.raises(ParallelExecutionError):
            stage_breakdown_series(
                SweepAxis.BUYERS, [10], num_channels=0, repetitions=2, seed=0, jobs=2
            )


class TestMetricsMerging:
    def test_parallel_sweep_reports_same_counters_as_serial(self):
        def run(jobs):
            registry = MetricsRegistry()
            with use_recorder(Recorder(metrics=registry)):
                stage_breakdown_series(
                    SweepAxis.BUYERS, [30], num_channels=3, repetitions=2,
                    seed=11, jobs=jobs,
                )
            return registry.snapshot()

        serial, parallel = run(None), run(2)
        assert serial["counters"] == parallel["counters"]
        serial_timers = {
            name: stats["count"] for name, stats in serial["timers"].items()
        }
        parallel_timers = {
            name: stats["count"] for name, stats in parallel["timers"].items()
        }
        assert serial_timers == parallel_timers

    def test_registry_merge_accumulates(self):
        source = MetricsRegistry()
        source.counter("a.count").inc(3)
        source.gauge("a.level").set(1.5)
        with source.timer("a.time_s"):
            pass
        source.histogram("a.dist").observe(0.25)
        target = MetricsRegistry()
        target.counter("a.count").inc(1)
        target.merge(source.snapshot())
        target.merge(source.snapshot())
        snapshot = target.snapshot()
        assert snapshot["counters"]["a.count"] == 7
        assert snapshot["gauges"]["a.level"] == 1.5
        assert snapshot["timers"]["a.time_s"]["count"] == 2
        assert snapshot["histograms"]["a.dist"]["count"] == 2
        assert sum(snapshot["histograms"]["a.dist"]["bucket_counts"]) == 2
