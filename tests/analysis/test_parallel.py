"""The parallel sweep runner: determinism, merging, and failure modes."""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import (
    SweepAxis,
    optimal_comparison_series,
    stage_breakdown_series,
)
from repro.analysis.parallel import parallel_map, resolve_jobs
from repro.errors import ParallelExecutionError, SpectrumMatchingError
from repro.obs import ListEventSink, MetricsRegistry, Recorder, use_recorder


# Worker functions must live at module level to be picklable.
def _square(x: int) -> int:
    return x * x


def _explode(x: int) -> int:
    if x == 3:
        raise ValueError(f"worker saw the poison value {x}")
    return x


def _die_hard(x: int) -> int:
    """Kill the worker process outright on the poison value."""
    if x == 3:
        os._exit(1)
    return x * x


def _die_once(arg) -> int:
    """Kill the worker the first time it sees the poison value.

    A sentinel file (passed in to keep the function picklable) records
    that the death already happened, so the retry succeeds -- modelling
    a transient OOM kill.
    """
    x, sentinel = arg
    if x == 3 and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os._exit(1)
    return x * x


class TestResolveJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_explicit_count_is_literal(self):
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            resolve_jobs(-2)


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_results_in_submission_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_worker_exception_surfaces_as_clean_error(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            parallel_map(_explode, [1, 2, 3, 4], jobs=2)
        assert "poison value 3" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_serial_path_raises_unwrapped(self):
        # Serial execution keeps the historical behaviour: the original
        # exception propagates, nothing is wrapped.
        with pytest.raises(ValueError):
            parallel_map(_explode, [3], jobs=1)


class TestWorkerDeathRetries:
    """Tasks lost to worker death are resubmitted, bounded and observable."""

    def test_transient_death_is_retried_to_success(self, tmp_path):
        sentinel = str(tmp_path / "died")
        sink, metrics = ListEventSink(), MetricsRegistry()
        items = [(x, sentinel) for x in range(1, 6)]
        with use_recorder(Recorder(events=sink, metrics=metrics)):
            results = parallel_map(
                _die_once, items, jobs=2, retry_backoff_s=0.0
            )
        assert results == [x * x for x in range(1, 6)]
        retries = [e for e in sink.events if e["event"] == "analysis.retry"]
        # The poison task (index 2) is always among the lost; the dying
        # worker may take other in-flight tasks down with it.
        assert retries and 2 in retries[0]["tasks"]
        assert all(a == 1 for a in retries[0]["attempts"])
        assert metrics.snapshot()["counters"]["analysis.retries"] >= 1

    def test_persistent_death_exhausts_budget(self):
        with pytest.raises(ParallelExecutionError, match="worker death"):
            parallel_map(
                _die_hard, [1, 2, 3, 4], jobs=2, retries=1, retry_backoff_s=0.0
            )

    def test_retries_zero_is_strict(self):
        with pytest.raises(ParallelExecutionError, match="0 retries"):
            parallel_map(_die_hard, [1, 2, 3, 4], jobs=2, retries=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            parallel_map(_square, [1, 2], jobs=2, retries=-1)

    def test_application_exception_is_never_retried(self):
        # A raising task is deterministic; resubmitting it would just
        # raise again.  It must fail fast, not burn the retry budget.
        with pytest.raises(ParallelExecutionError, match="poison value 3"):
            parallel_map(_explode, [1, 2, 3, 4], jobs=2, retries=5)


class TestSweepDeterminism:
    """Sweeps return identical rows for every worker count."""

    _KW = dict(num_channels=3, repetitions=3, seed=11)

    def test_stage_breakdown_serial_equals_parallel(self):
        serial = stage_breakdown_series(SweepAxis.BUYERS, [30, 45], **self._KW)
        parallel = stage_breakdown_series(
            SweepAxis.BUYERS, [30, 45], jobs=2, **self._KW
        )
        assert serial == parallel

    def test_worker_count_independence(self):
        two = stage_breakdown_series(SweepAxis.BUYERS, [30, 45], jobs=2, **self._KW)
        three = stage_breakdown_series(SweepAxis.BUYERS, [30, 45], jobs=3, **self._KW)
        assert two == three

    def test_optimal_comparison_serial_equals_parallel(self):
        kwargs = dict(num_buyers=6, num_channels=3, repetitions=4, seed=2)
        serial = optimal_comparison_series(SweepAxis.SIMILARITY, [0.0, 1.0], **kwargs)
        parallel = optimal_comparison_series(
            SweepAxis.SIMILARITY, [0.0, 1.0], jobs=2, **kwargs
        )
        assert serial == parallel
        assert serial[0].measured_srcc == parallel[0].measured_srcc

    def test_crash_in_worker_is_a_clean_error(self):
        # num_channels=0 makes every repetition's market construction
        # raise inside the worker; the sweep must fail fast with the
        # library's error type instead of hanging or dying opaquely.
        with pytest.raises(ParallelExecutionError):
            stage_breakdown_series(
                SweepAxis.BUYERS, [10], num_channels=0, repetitions=2, seed=0, jobs=2
            )


class TestMetricsMerging:
    def test_parallel_sweep_reports_same_counters_as_serial(self):
        def run(jobs):
            registry = MetricsRegistry()
            with use_recorder(Recorder(metrics=registry)):
                stage_breakdown_series(
                    SweepAxis.BUYERS, [30], num_channels=3, repetitions=2,
                    seed=11, jobs=jobs,
                )
            return registry.snapshot()

        serial, parallel = run(None), run(2)
        assert serial["counters"] == parallel["counters"]
        serial_timers = {
            name: stats["count"] for name, stats in serial["timers"].items()
        }
        parallel_timers = {
            name: stats["count"] for name, stats in parallel["timers"].items()
        }
        assert serial_timers == parallel_timers

    def test_registry_merge_accumulates(self):
        source = MetricsRegistry()
        source.counter("a.count").inc(3)
        source.gauge("a.level").set(1.5)
        with source.timer("a.time_s"):
            pass
        source.histogram("a.dist").observe(0.25)
        target = MetricsRegistry()
        target.counter("a.count").inc(1)
        target.merge(source.snapshot())
        target.merge(source.snapshot())
        snapshot = target.snapshot()
        assert snapshot["counters"]["a.count"] == 7
        assert snapshot["gauges"]["a.level"] == 1.5
        assert snapshot["timers"]["a.time_s"]["count"] == 2
        assert snapshot["histograms"]["a.dist"]["count"] == 2
        assert sum(snapshot["histograms"]["a.dist"]["bucket_counts"]) == 2
