"""Tests for the strategic-behaviour (manipulation) analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.manipulation import (
    candidate_misreports,
    demonstration_instance,
    evaluate_report,
    find_profitable_misreport,
    manipulability_rate,
)
from repro.core.two_stage import run_two_stage
from repro.errors import MarketConfigurationError
from repro.workloads.scenarios import paper_simulation_market


class TestEvaluateReport:
    def test_truthful_report_reproduces_mechanism(self, market_factory):
        market = market_factory(num_buyers=8, num_channels=3, seed=0)
        baseline = run_two_stage(market, record_trace=False)
        for buyer in range(market.num_buyers):
            utility = evaluate_report(market, buyer, market.buyer_vector(buyer))
            assert utility == pytest.approx(
                baseline.matching.buyer_utility(buyer, market.utilities)
            )

    def test_scores_with_true_not_reported_utilities(self):
        market, buyer, lie = demonstration_instance()
        # Under the lie the buyer wins channel 0; her score must be the
        # TRUE 5.0, not the reported 20.0.
        assert evaluate_report(market, buyer, lie) == pytest.approx(5.0)

    def test_wrong_report_shape_rejected(self, market_factory):
        market = market_factory()
        with pytest.raises(MarketConfigurationError):
            evaluate_report(market, 0, [1.0])


class TestDemonstration:
    def test_inflation_manipulation_pays(self):
        market, buyer, lie = demonstration_instance()
        truthful = evaluate_report(market, buyer, market.buyer_vector(buyer))
        lied = evaluate_report(market, buyer, lie)
        assert truthful == pytest.approx(4.0)  # settles for channel 1
        assert lied == pytest.approx(5.0)  # inflation wins channel 0
        assert lied > truthful

    def test_search_finds_the_manipulation(self):
        market, buyer, _ = demonstration_instance()
        result = find_profitable_misreport(
            market, buyer, np.random.default_rng(0), num_random=0
        )
        assert result.profitable
        assert result.gain == pytest.approx(1.0)
        assert result.best_report is not None


class TestCandidatePortfolio:
    def test_portfolio_is_nonempty_and_well_shaped(self, market_factory):
        market = market_factory(num_buyers=6, num_channels=3, seed=1)
        candidates = candidate_misreports(
            market, 0, np.random.default_rng(0), num_random=3
        )
        assert len(candidates) >= 8
        for report in candidates:
            assert report.shape == (market.num_channels,)
            assert np.all(report >= 0.0)

    def test_random_candidates_respect_count(self, market_factory):
        market = market_factory(num_buyers=6, num_channels=3, seed=1)
        few = candidate_misreports(market, 0, np.random.default_rng(0), 0)
        more = candidate_misreports(market, 0, np.random.default_rng(0), 7)
        assert len(more) == len(few) + 7


class TestManipulabilityRate:
    def test_rate_bounds_and_counts(self):
        markets = [
            paper_simulation_market(8, 3, np.random.default_rng([222, s]))
            for s in range(3)
        ]
        rate, found, total = manipulability_rate(
            markets, np.random.default_rng(5), num_random=3
        )
        assert total == 24
        assert 0.0 <= rate <= 1.0
        assert found == round(rate * total)

    def test_mechanism_is_not_truthful(self):
        """The headline: unlike TRUST, matching IS manipulable."""
        markets = [
            paper_simulation_market(10, 3, np.random.default_rng([111, s]))
            for s in range(5)
        ]
        rate, found, _ = manipulability_rate(
            markets, np.random.default_rng(1), num_random=5
        )
        assert found > 0  # profitable lies exist on plain random markets

    def test_no_false_positives(self):
        """Every 'profitable' report must actually beat the truth when
        re-evaluated independently."""
        market = paper_simulation_market(10, 3, np.random.default_rng(333))
        rng = np.random.default_rng(2)
        for buyer in range(market.num_buyers):
            result = find_profitable_misreport(market, buyer, rng, num_random=4)
            if result.profitable:
                recheck = evaluate_report(market, buyer, result.best_report)
                assert recheck == pytest.approx(result.best_utility)
                assert recheck > result.truthful_utility
