"""Tests for the fairness metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fairness import (
    FairnessReport,
    buyer_utilities,
    fairness_report,
    jain_fairness_index,
    justified_envy_pairs,
)
from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.stability import pairwise_blocking_pairs
from repro.core.two_stage import run_two_stage
from repro.errors import SpectrumMatchingError
from repro.interference.generators import interference_map_from_edge_lists
from repro.workloads.scenarios import paper_simulation_market


def market_of(utilities, per_channel_edges):
    utilities = np.asarray(utilities, dtype=float)
    imap = interference_map_from_edge_lists(utilities.shape[0], per_channel_edges)
    return SpectrumMarket(utilities, imap)


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_fairness_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_fairness_index([5.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero_conventions(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_scale_invariance(self):
        values = [1.0, 3.0, 2.0]
        assert jain_fairness_index(values) == pytest.approx(
            jain_fairness_index([10 * v for v in values])
        )

    def test_negative_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            jain_fairness_index([-1.0])

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            values = rng.random(8)
            index = jain_fairness_index(values)
            assert 1 / 8 - 1e-12 <= index <= 1.0 + 1e-12


class TestJustifiedEnvy:
    def test_envy_found_in_crafted_instance(self):
        # Buyer 1 (price 5) justifiably envies buyer 0 (price 3) on the
        # single channel: feasible swap, both she and the seller gain.
        market = market_of([[3.0], [5.0]], [[(0, 1)]])
        matching = Matching(1, 2)
        matching.match(0, 0)
        pairs = list(justified_envy_pairs(market, matching))
        assert len(pairs) == 1
        envy = pairs[0]
        assert (envy.envier, envy.envied) == (1, 0)
        assert envy.new_utility == 5.0
        assert envy.envied_price == 3.0

    def test_no_envy_when_seller_would_lose(self):
        market = market_of([[5.0], [3.0]], [[(0, 1)]])
        matching = Matching(1, 2)
        matching.match(0, 0)  # the higher-priced buyer already holds it
        assert list(justified_envy_pairs(market, matching)) == []

    def test_no_envy_when_swap_infeasible(self):
        # Buyer 2 blocks: envier conflicts with the REST of the coalition.
        market = market_of(
            [[3.0], [5.0], [1.0]],
            [[(0, 1), (1, 2)]],
        )
        matching = Matching(1, 3)
        matching.match(0, 0)
        matching.match(2, 0)  # 0 and 2 are compatible
        # Buyer 1 would replace 0 but conflicts with 2 as well.
        assert list(justified_envy_pairs(market, matching)) == []

    def test_envy_is_single_eviction_blocking(self, market_factory):
        """Every justified-envy triple is a Def.-4 blocking pair whose
        eviction set is exactly the envied buyer."""
        market = market_factory(num_buyers=12, num_channels=4, seed=6)
        matching = Matching(market.num_channels, market.num_buyers)
        # A deliberately bad matching: everyone crammed greedily by index.
        for j in range(market.num_buyers):
            for channel in range(market.num_channels):
                if market.price(channel, j) > 0 and not market.graph(
                    channel
                ).conflicts_with_set(j, matching.coalition(channel)):
                    matching.match(j, channel)
                    break
        blocking = {
            (pair.channel, pair.buyer, pair.evicted)
            for pair in pairwise_blocking_pairs(market, matching)
        }
        for envy in justified_envy_pairs(market, matching):
            assert (envy.channel, envy.envier, (envy.envied,)) in blocking


class TestFairnessReport:
    def test_report_fields(self, market_factory):
        market = market_factory(num_buyers=15, num_channels=4, seed=2)
        result = run_two_stage(market, record_trace=False)
        report = fairness_report(market, result.matching)
        assert isinstance(report, FairnessReport)
        assert 0.0 < report.jain_index <= 1.0
        assert report.jain_index <= report.jain_index_matched + 1e-12
        assert report.min_utility <= report.median_utility <= report.max_utility
        assert report.envy_count >= 0

    def test_buyer_utilities_vector(self, market_factory):
        market = market_factory(num_buyers=10, num_channels=3, seed=3)
        result = run_two_stage(market, record_trace=False)
        values = buyer_utilities(market, result.matching)
        assert len(values) == 10
        assert sum(values) == pytest.approx(result.social_welfare)

    def test_stable_output_envy_equals_single_eviction_blocks(self):
        """On the algorithm's output, justified envy = the pairwise
        blocking pairs with singleton eviction sets."""
        market = paper_simulation_market(14, 4, np.random.default_rng(777))
        result = run_two_stage(market, record_trace=False)
        envies = {
            (e.channel, e.envier, (e.envied,))
            for e in justified_envy_pairs(market, result.matching)
        }
        singleton_blocks = {
            (p.channel, p.buyer, p.evicted)
            for p in pairwise_blocking_pairs(market, result.matching)
            if len(p.evicted) == 1
        }
        assert envies == singleton_blocks
