"""Tests for the canonical figure specs (scaled-down executions)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import SweepAxis
from repro.analysis.paper_figures import FIGURE_SPECS, figure_spec, run_figure
from repro.errors import SpectrumMatchingError


class TestSpecTable:
    def test_all_nine_panels_defined(self):
        for figure in (6, 7, 8):
            for panel in ("a", "b", "c"):
                spec = figure_spec(figure, panel)
                assert spec.figure == figure
                assert spec.panel == panel

    def test_fig6_matches_paper_captions(self):
        a = figure_spec(6, "a")
        assert a.axis is SweepAxis.BUYERS
        assert a.num_channels == 4
        assert a.values == (6, 7, 8, 9, 10)
        b = figure_spec(6, "b")
        assert b.num_buyers == 8
        assert b.values == (2, 3, 4, 5, 6)
        c = figure_spec(6, "c")
        assert (c.num_channels, c.num_buyers) == (5, 8)

    def test_fig7_matches_paper_captions(self):
        a = figure_spec(7, "a")
        assert a.num_channels == 10
        assert a.values[0] == 200 and a.values[-1] == 320
        b = figure_spec(7, "b")
        assert b.num_buyers == 500
        c = figure_spec(7, "c")
        assert (c.num_channels, c.num_buyers) == (8, 300)

    def test_fig8_reuses_fig7_parameters(self):
        for panel in ("a", "b", "c"):
            seven = figure_spec(7, panel)
            eight = figure_spec(8, panel)
            assert eight.values == seven.values
            assert eight.num_buyers == seven.num_buyers
            assert eight.num_channels == seven.num_channels

    def test_unknown_panel_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            figure_spec(6, "z")

    def test_no_accidental_extra_specs(self):
        assert len(FIGURE_SPECS) == 9


class TestScaledDownRuns:
    def test_fig6_panel_runs(self):
        spec = figure_spec(6, "a")
        rows = run_figure(spec, repetitions=2, seed=0, values=[6, 7])
        assert len(rows) == 2
        assert all("welfare_ratio" in row.series for row in rows)

    def test_fig7_panel_runs(self):
        spec = figure_spec(7, "a")
        rows = run_figure(spec, repetitions=1, seed=0, values=[30])
        assert "rounds_stage1" in rows[0].series
        assert "welfare_phase2" in rows[0].series

    def test_default_repetitions_applied(self):
        spec = figure_spec(6, "a")
        rows = run_figure(spec, values=[6], seed=0, repetitions=3)
        assert rows[0].series["welfare_ratio"].count == 3
