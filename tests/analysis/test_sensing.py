"""Tests for the sensing-noise robustness study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensing import (
    effective_welfare,
    perturb_interference,
    run_sensing_study,
)
from repro.core.matching import Matching
from repro.errors import MarketConfigurationError
from repro.interference.generators import (
    complete_graph,
    empty_graph,
    interference_map_from_edge_lists,
)
from repro.interference.graph import InterferenceMap
from repro.core.market import SpectrumMarket


class TestPerturbation:
    def test_zero_noise_is_identity(self, rng):
        imap = interference_map_from_edge_lists(4, [[(0, 1)], [(2, 3)]])
        estimated = perturb_interference(imap, 0.0, 0.0, rng)
        assert all(estimated[i] == imap[i] for i in range(2))

    def test_full_miss_erases_all_edges(self, rng):
        imap = InterferenceMap([complete_graph(5)])
        estimated = perturb_interference(imap, 1.0, 0.0, rng)
        assert estimated[0].num_edges == 0

    def test_full_false_alarm_completes_the_graph(self, rng):
        imap = InterferenceMap([empty_graph(5)])
        estimated = perturb_interference(imap, 0.0, 1.0, rng)
        assert estimated[0].num_edges == 10

    def test_probability_validation(self, rng):
        imap = InterferenceMap([empty_graph(3)])
        with pytest.raises(MarketConfigurationError):
            perturb_interference(imap, -0.1, 0.0, rng)
        with pytest.raises(MarketConfigurationError):
            perturb_interference(imap, 0.0, 1.5, rng)

    def test_miss_rate_statistics(self):
        imap = InterferenceMap([complete_graph(30)])  # 435 edges
        rng = np.random.default_rng(0)
        estimated = perturb_interference(imap, 0.2, 0.0, rng)
        kept = estimated[0].num_edges
        assert 0.7 * 435 < kept < 0.9 * 435

    def test_channels_perturbed_independently(self):
        imap = InterferenceMap([complete_graph(10), complete_graph(10)])
        rng = np.random.default_rng(1)
        estimated = perturb_interference(imap, 0.5, 0.0, rng)
        assert estimated[0] != estimated[1]  # astronomically unlikely to tie


class TestEffectiveWelfare:
    def make_market(self):
        utilities = np.array([[3.0], [2.0], [1.0]])
        imap = interference_map_from_edge_lists(3, [[(0, 1)]])
        return SpectrumMarket(utilities, imap)

    def test_clean_matching_scores_fully(self):
        market = self.make_market()
        matching = Matching(1, 3)
        matching.match(0, 0)
        matching.match(2, 0)  # 0 and 2 don't interfere
        welfare, pairs, victims = effective_welfare(market, matching)
        assert welfare == pytest.approx(4.0)
        assert pairs == 0
        assert victims == 0

    def test_violating_pair_zeroes_both_victims(self):
        market = self.make_market()
        matching = Matching(1, 3)
        matching.match(0, 0)
        matching.match(1, 0)  # truly interfering pair
        matching.match(2, 0)
        welfare, pairs, victims = effective_welfare(market, matching)
        assert pairs == 1
        assert victims == 2
        assert welfare == pytest.approx(1.0)  # only buyer 2 realises value

    def test_unmatched_buyers_contribute_nothing(self):
        market = self.make_market()
        matching = Matching(1, 3)
        welfare, pairs, victims = effective_welfare(market, matching)
        assert welfare == 0.0 and pairs == 0 and victims == 0


class TestStudy:
    def test_perfect_sensing_point(self):
        point = run_sensing_study(
            0.0, 0.0, num_buyers=12, num_channels=3, repetitions=3, seed=9
        )
        assert point.violating_pairs == 0.0
        assert point.nominal_welfare == pytest.approx(point.effective_welfare)
        assert point.nominal_welfare == pytest.approx(point.clean_welfare)

    def test_misses_create_overconfidence(self):
        point = run_sensing_study(
            0.4, 0.0, num_buyers=15, num_channels=3, repetitions=4, seed=10
        )
        assert point.violating_pairs > 0
        assert point.nominal_welfare > point.effective_welfare

    def test_false_alarms_never_violate(self):
        point = run_sensing_study(
            0.0, 0.4, num_buyers=15, num_channels=3, repetitions=4, seed=11
        )
        assert point.violating_pairs == 0.0
        assert point.effective_welfare < point.clean_welfare

    def test_determinism(self):
        a = run_sensing_study(0.1, 0.1, num_buyers=10, num_channels=3,
                              repetitions=2, seed=12)
        b = run_sensing_study(0.1, 0.1, num_buyers=10, num_channels=3,
                              repetitions=2, seed=12)
        assert a == b
