"""Session layer: shim equivalence, uniform assembly, durable identity.

The tentpole contract in one file:

* every legacy entrypoint (``run_two_stage``,
  ``run_distributed_matching``, ``OnlineMatcher.run``, the durable
  runners, registry ``solve``) is a thin shim whose emitted trace is
  byte-identical to calling the Session executors directly;
* ``Session(spec).run()`` reproduces the same results from a declarative
  spec;
* a durable run launched from a spec stores
  ``config_hash(spec.durable_identity())`` as its run-dir identity, and
  ``repro resume`` accepts that run dir.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.two_stage import run_two_stage
from repro.distributed.protocol import run_distributed_matching
from repro.dynamic.generator import DynamicMarketGenerator
from repro.dynamic.online import OnlineMatcher, RematchStrategy
from repro.engine.registry import solve as registry_solve
from repro.errors import SpecError
from repro.ioutil import config_hash
from repro.obs import JsonlEventSink, Recorder, use_recorder
from repro.run.session import (
    Session,
    build_market,
    build_recorder,
    execute_distributed,
    execute_durable,
    execute_online_run,
    execute_solve,
    execute_two_stage,
)
from repro.run.spec import (
    DurabilitySpec,
    EngineSpec,
    MarketSpec,
    RunSpec,
    TelemetrySpec,
    WorkloadSpec,
)
from repro.workloads.scenarios import paper_simulation_market


def _market(buyers=12, sellers=3, seed=5):
    return paper_simulation_market(
        buyers, sellers, np.random.default_rng(seed)
    )


def _record(fn) -> str:
    """Run ``fn`` under an event-recording recorder; return the JSONL."""
    buffer = io.StringIO()
    recorder = Recorder(events=JsonlEventSink(buffer))
    with recorder, use_recorder(recorder):
        fn()
    return buffer.getvalue()


class TestShimTraceEquivalence:
    """Shim vs executor: byte-identical event streams and results."""

    def test_run_two_stage(self):
        market = _market()
        via_shim = _record(lambda: run_two_stage(market))
        via_executor = _record(lambda: execute_two_stage(market))
        assert via_shim == via_executor and via_shim

    def test_run_distributed_matching(self):
        market = _market()
        via_shim = _record(lambda: run_distributed_matching(market, seed=5))
        via_executor = _record(lambda: execute_distributed(market, seed=5))
        assert via_shim == via_executor and via_shim

    def test_online_matcher_run(self):
        def epochs():
            return DynamicMarketGenerator(
                num_channels=3,
                initial_buyers=10,
                arrival_rate=3.0,
                departure_prob=0.1,
                drift_sigma=0.05,
                rng=np.random.default_rng(3),
            ).epochs(4)

        via_shim = _record(
            lambda: OnlineMatcher(RematchStrategy.WARM).run(epochs())
        )
        via_executor = _record(
            lambda: execute_online_run(
                OnlineMatcher(RematchStrategy.WARM), epochs()
            )
        )
        assert via_shim == via_executor and via_shim

    def test_registry_solve(self):
        import json

        def canonical(trace: str):
            # Solve events carry wall/cpu timings; everything else in the
            # stream must match byte-for-byte.
            events = []
            for line in trace.splitlines():
                payload = json.loads(line)
                events.append(
                    {
                        key: value
                        for key, value in payload.items()
                        if not key.endswith("_s")
                    }
                )
            return events

        market = _market()
        via_shim = _record(lambda: registry_solve("two_stage", market))
        via_executor = _record(lambda: execute_solve("two_stage", market))
        assert canonical(via_shim) == canonical(via_executor)
        assert via_shim

    def test_durable_dynamic(self, tmp_path):
        from repro.runtime.durable import run_durable_dynamic

        config = dict(
            sellers=3,
            buyers=10,
            arrival_rate=3.0,
            departure_prob=0.1,
            drift=0.05,
            epochs=4,
            seed=11,
            strategy="warm",
            checkpoint_every=2,
        )
        shim_result = run_durable_dynamic(tmp_path / "shim", dict(config))
        exec_result = execute_durable(
            "dynamic", tmp_path / "exec", dict(config), seed=11
        )
        assert shim_result == exec_result

    def test_durable_chaos(self, tmp_path):
        from repro.runtime.durable import run_durable_chaos

        config = dict(
            buyers=8,
            sellers=3,
            seed=2,
            policy="default",
            crashes=["buyer:1@4-9"],
            checkpoint_every=3,
        )
        shim_result = run_durable_chaos(tmp_path / "shim", dict(config))
        exec_result = execute_durable(
            "chaos", tmp_path / "exec", dict(config), seed=2
        )
        assert shim_result == exec_result


class TestSessionDispatch:
    def test_toy_returns_two_stage_result(self):
        result = Session(
            RunSpec(command="toy", market=MarketSpec(scenario="toy"))
        ).run()
        assert result.social_welfare == pytest.approx(30.0)

    def test_distributed_matches_direct_executor(self):
        spec = RunSpec(
            command="distributed",
            market=MarketSpec(buyers=12, sellers=3, seed=5),
            engine=EngineSpec(name="distributed", options={"policy": "default"}),
        )
        session_run = Session(spec).run()
        direct = execute_distributed(_market(), seed=5)
        assert session_run.matching == direct.matching
        assert session_run.slots == direct.slots

    def test_session_trace_matches_executor_trace(self):
        spec = RunSpec(
            command="distributed",
            market=MarketSpec(buyers=12, sellers=3, seed=5),
            engine=EngineSpec(name="distributed", options={"policy": "default"}),
        )
        # Session dispatch with an injected recorder emits the identical
        # stream the direct executor does.
        buffer = io.StringIO()
        recorder = Recorder(events=JsonlEventSink(buffer))
        with recorder:
            Session(spec, recorder=recorder).run()
        via_executor = _record(
            lambda: execute_distributed(_market(), seed=5)
        )
        assert buffer.getvalue() == via_executor and via_executor

    def test_dynamic_runs_both_strategies(self):
        spec = RunSpec(
            command="dynamic",
            market=MarketSpec(
                buyers=10,
                sellers=3,
                seed=3,
                workload=WorkloadSpec(epochs=4, strategy="both"),
            ),
        )
        results = Session(spec).run()
        assert set(results) == {RematchStrategy.WARM, RematchStrategy.COLD}
        assert all(len(outcomes) == 4 for outcomes in results.values())

    def test_solve_returns_report(self):
        spec = RunSpec(
            command="solve",
            market=MarketSpec(buyers=8, sellers=3, seed=1),
            engine=EngineSpec(name="greedy"),
        )
        report = Session(spec).run()
        assert report.solver == "greedy"

    def test_policy_both_rejected_for_single_session(self):
        spec = RunSpec(
            command="distributed",
            market=MarketSpec(buyers=8, sellers=3),
            engine=EngineSpec(name="distributed", options={"policy": "both"}),
        )
        with pytest.raises(SpecError, match="single policy"):
            Session(spec).run()

    def test_report_command_is_cli_only(self):
        with pytest.raises(SpecError, match="CLI-only"):
            Session(RunSpec(command="report")).run()

    def test_invalid_spec_rejected_at_construction(self):
        with pytest.raises(SpecError):
            Session(RunSpec(command="dynamic"))  # no workload


class TestUniformAssembly:
    def test_build_market_scenarios(self):
        toy = build_market(MarketSpec(scenario="toy"))
        assert toy.num_buyers == 5 and toy.num_channels == 3
        paper = build_market(MarketSpec(buyers=9, sellers=4, seed=2))
        assert paper.num_buyers == 9 and paper.num_channels == 4

    def test_default_telemetry_yields_null_recorder(self):
        recorder = build_recorder(TelemetrySpec())
        assert not recorder.enabled

    def test_trace_telemetry_writes_manifest(self, tmp_path):
        import json

        trace = tmp_path / "t.jsonl"
        spec = RunSpec(command="toy", market=MarketSpec(scenario="toy"))
        recorder = build_recorder(
            TelemetrySpec(trace_out=str(trace)),
            seed=spec.market.seed,
            config=spec.to_dict(),
        )
        with recorder, use_recorder(recorder):
            execute_two_stage(build_market(spec.market))
        lines = trace.read_text().splitlines()
        manifest = json.loads(lines[0])
        assert manifest["event"] == "manifest"
        assert manifest["config"]["command"] == "toy"


class TestDurableSpecIdentity:
    def _durable_spec(self, tmp_path):
        return RunSpec(
            command="dynamic",
            market=MarketSpec(
                buyers=10,
                sellers=3,
                seed=4,
                workload=WorkloadSpec(epochs=4, strategy="warm"),
            ),
            durability=DurabilitySpec(
                checkpoint_dir=str(tmp_path / "run"), checkpoint_every=2
            ),
        )

    def test_run_dir_hash_is_spec_identity_hash(self, tmp_path):
        from repro.runtime import CheckpointStore

        spec = self._durable_spec(tmp_path)
        Session(spec).run()
        store = CheckpointStore.open(spec.durability.checkpoint_dir)
        assert store.config_hash == config_hash(spec.durable_identity())

    def test_resume_accepts_spec_shaped_run_dir(self, tmp_path):
        from repro.runtime import resume_run

        spec = self._durable_spec(tmp_path)
        fresh = Session(spec).run()
        resumed = resume_run(spec.durability.checkpoint_dir)
        assert resumed == fresh

    def test_equivalent_spec_different_telemetry_same_identity(self, tmp_path):
        from repro.runtime import CheckpointStore

        spec = self._durable_spec(tmp_path)
        Session(spec).run()
        store = CheckpointStore.open(spec.durability.checkpoint_dir)
        loud = RunSpec.from_dict(
            {
                **spec.to_dict(),
                "telemetry": TelemetrySpec(metrics=True).to_dict(),
                "durability": DurabilitySpec(
                    checkpoint_dir="somewhere-else",
                    checkpoint_every=spec.durability.checkpoint_every,
                ).to_dict(),
            }
        )
        assert store.config_hash == config_hash(loud.durable_identity())
