"""RunSpec serialization contract: round trips, hashing, rejection.

The spec is the wire format of the run model (and, verbatim, the request
schema of the planned async gateway), so the tests pin the properties a
wire format needs: ``to_json`` -> ``from_json`` -> ``to_json`` is
byte-stable, the canonical hash ignores JSON key order, unknown and
future fields are rejected with actionable errors, and the durable
identity excludes everything that does not change the computation.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import SpecError
from repro.ioutil import config_hash
from repro.run.spec import (
    RUN_COMMANDS,
    SPEC_SCHEMA_VERSION,
    DurabilitySpec,
    EngineSpec,
    FaultSpec,
    MarketSpec,
    ProfileSpec,
    RunSpec,
    TelemetrySpec,
    WorkloadSpec,
)


def _full_spec() -> RunSpec:
    """A spec exercising every sub-spec with non-default values."""
    return RunSpec(
        command="chaos",
        market=MarketSpec(buyers=10, sellers=3, seed=7),
        engine=EngineSpec(name="distributed", options={"policy": "adaptive"}),
        faults=FaultSpec(
            loss=0.1,
            crashes=("buyer:1@4-9",),
            partitions=("buyer:0|rest@5-20",),
            deadline_slots=200,
            on_timeout="degrade",
        ),
        telemetry=TelemetrySpec(
            trace_out="run.jsonl", metrics=True, slo=("drop_rate<0.5",)
        ),
        durability=DurabilitySpec(checkpoint_dir="rundir", checkpoint_every=3),
    )


class TestRoundTrip:
    def test_json_round_trip_is_byte_stable(self):
        for spec in (RunSpec(command="toy"), _full_spec()):
            once = spec.to_json()
            again = RunSpec.from_json(once).to_json()
            assert once == again
            # and the indented form round-trips through the same objects
            assert RunSpec.from_json(spec.to_json(indent=2)) == spec

    def test_round_trip_preserves_every_field(self):
        spec = _full_spec()
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_to_dict_carries_schema_version(self):
        assert RunSpec(command="toy").to_dict()["schema"] == SPEC_SCHEMA_VERSION

    def test_workload_round_trips(self):
        spec = RunSpec(
            command="dynamic",
            market=MarketSpec(
                buyers=12,
                sellers=3,
                workload=WorkloadSpec(epochs=5, strategy="warm"),
            ),
        )
        back = RunSpec.from_json(spec.to_json())
        assert back.market.workload == spec.market.workload


class TestProfileSpec:
    def test_round_trips_through_run_spec(self):
        spec = RunSpec(
            command="toy",
            profile=ProfileSpec(profile_out="prof", memory=False, top=5),
        )
        back = RunSpec.from_json(spec.to_json())
        assert back.profile == spec.profile
        assert back == spec

    def test_default_profile_is_omitted_from_payload(self):
        # Specs (and the trace manifests embedding them) written before
        # profiling existed must stay byte-identical: the section only
        # appears when it is non-default.
        assert "profile" not in RunSpec(command="toy").to_dict()
        assert "profile" in RunSpec(
            command="toy", profile=ProfileSpec(profile_out="prof")
        ).to_dict()

    def test_unknown_profile_field_rejected(self):
        spec = RunSpec(command="toy", profile=ProfileSpec(profile_out="p"))
        payload = spec.to_dict()
        payload["profile"]["flamegraph"] = True
        with pytest.raises(SpecError, match="profile.*'flamegraph'"):
            RunSpec.from_dict(payload)

    def test_validate_rejects_bad_fields(self):
        with pytest.raises(SpecError, match="profile.profile_out"):
            ProfileSpec(profile_out=7).validate()
        with pytest.raises(SpecError, match="profile.top"):
            ProfileSpec(top=0).validate()

    def test_enabled_follows_profile_out(self):
        assert not ProfileSpec().enabled
        assert ProfileSpec(profile_out="prof").enabled

    def test_profiling_is_excluded_from_durable_identity(self):
        base = RunSpec(command="toy")
        profiled = RunSpec(
            command="toy", profile=ProfileSpec(profile_out="prof")
        )
        assert base.durable_identity() == profiled.durable_identity()


class TestSpecHash:
    def test_hash_is_key_order_independent(self):
        spec = _full_spec()
        payload = json.loads(spec.to_json())
        scrambled = json.dumps(payload, sort_keys=False, indent=3)
        # Re-parse from a differently-formatted document: identical hash.
        assert RunSpec.from_json(scrambled).spec_hash() == spec.spec_hash()
        assert config_hash(payload) == config_hash(
            json.loads(scrambled)
        )

    def test_hash_changes_with_content(self):
        base = _full_spec()
        changed = RunSpec.from_dict(
            {**base.to_dict(), "market": MarketSpec(seed=8).to_dict()}
        )
        assert changed.spec_hash() != base.spec_hash()

    def test_canonical_serialization_is_sorted_and_compact(self):
        canonical = _full_spec().canonical()
        assert ": " not in canonical and ", " not in canonical
        assert json.loads(canonical) == _full_spec().to_dict()


class TestRejection:
    def test_unknown_top_level_field(self):
        payload = RunSpec(command="toy").to_dict()
        payload["gateway"] = True
        with pytest.raises(SpecError, match="unknown field.*'gateway'"):
            RunSpec.from_dict(payload)

    def test_unknown_nested_field_names_section(self):
        payload = RunSpec(command="toy").to_dict()
        payload["market"]["latitude"] = 48.1
        with pytest.raises(SpecError, match="market.*'latitude'"):
            RunSpec.from_dict(payload)
        payload = RunSpec(command="toy").to_dict()
        payload["telemetry"]["verbose"] = True
        with pytest.raises(SpecError, match="telemetry.*'verbose'"):
            RunSpec.from_dict(payload)

    def test_error_lists_known_fields(self):
        payload = RunSpec(command="toy").to_dict()
        payload["market"]["sellerz"] = 2
        with pytest.raises(SpecError, match="known fields.*sellers"):
            RunSpec.from_dict(payload)

    def test_future_schema_rejected_with_upgrade_hint(self):
        payload = RunSpec(command="toy").to_dict()
        payload["schema"] = SPEC_SCHEMA_VERSION + 1
        with pytest.raises(SpecError, match="newer than this library"):
            RunSpec.from_dict(payload)

    def test_missing_schema_rejected(self):
        payload = RunSpec(command="toy").to_dict()
        del payload["schema"]
        with pytest.raises(SpecError, match="missing required field 'schema'"):
            RunSpec.from_dict(payload)

    def test_invalid_json_document(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            RunSpec.from_json("{nope")


class TestValidate:
    def test_every_run_command_validates_with_defaults(self):
        for command in RUN_COMMANDS:
            spec = RunSpec(command=command)
            if command == "dynamic":
                spec = RunSpec(
                    command="dynamic",
                    market=MarketSpec(workload=WorkloadSpec()),
                )
            spec.validate()

    def test_unknown_command_rejected(self):
        with pytest.raises(SpecError, match="command"):
            RunSpec(command="teleport").validate()

    def test_dynamic_without_workload_rejected(self):
        with pytest.raises(SpecError, match="market.workload"):
            RunSpec(command="dynamic").validate()

    def test_durable_dynamic_needs_single_strategy(self):
        spec = RunSpec(
            command="dynamic",
            market=MarketSpec(workload=WorkloadSpec(strategy="both")),
            durability=DurabilitySpec(checkpoint_dir="d"),
        )
        with pytest.raises(SpecError, match="single strategy"):
            spec.validate()

    def test_stall_injection_requires_checkpoint_dir(self):
        with pytest.raises(SpecError, match="requires --checkpoint-dir"):
            DurabilitySpec(inject_stall_after=5).validate()

    def test_checkpoint_cadence_floor(self):
        with pytest.raises(SpecError, match="--checkpoint-every"):
            DurabilitySpec(checkpoint_dir="d", checkpoint_every=0).validate()


class TestDurableIdentity:
    def test_identity_excludes_operational_knobs(self):
        spec = _full_spec()
        twin = RunSpec.from_dict(spec.to_dict())
        # Everything that does not change the computation: where the
        # checkpoints live, the stall-injection test hook, telemetry and
        # parallelism.
        twin = RunSpec(
            command=twin.command,
            market=twin.market,
            engine=twin.engine,
            faults=twin.faults,
            telemetry=TelemetrySpec(metrics=True, trace_out="other.jsonl"),
            durability=DurabilitySpec(
                checkpoint_dir="elsewhere",
                checkpoint_every=spec.durability.checkpoint_every,
                inject_stall_after=3,
                max_retries=9,
            ),
        )
        assert twin.durable_identity() == spec.durable_identity()
        assert config_hash(twin.durable_identity()) == config_hash(
            spec.durable_identity()
        )

    def test_identity_tracks_computation_changes(self):
        spec = _full_spec()
        changed = RunSpec(
            command=spec.command,
            market=MarketSpec(buyers=11, sellers=3, seed=7),
            engine=spec.engine,
            faults=spec.faults,
            durability=spec.durability,
        )
        assert config_hash(changed.durable_identity()) != config_hash(
            spec.durable_identity()
        )

    def test_checkpoint_cadence_is_part_of_identity(self):
        spec = _full_spec()
        changed = RunSpec(
            command=spec.command,
            market=spec.market,
            engine=spec.engine,
            faults=spec.faults,
            durability=DurabilitySpec(
                checkpoint_dir=spec.durability.checkpoint_dir,
                checkpoint_every=spec.durability.checkpoint_every + 1,
            ),
        )
        assert config_hash(changed.durable_identity()) != config_hash(
            spec.durable_identity()
        )


class TestEngineSpecDeprecationShim:
    def test_warns_exactly_once(self):
        with pytest.warns(DeprecationWarning) as record:
            engine = EngineSpec.from_use_bruteforce(True)
        deprecations = [
            w for w in record if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert engine.name == "bruteforce"

    def test_flag_mapping_matches_registry_dispatch(self):
        from repro.engine import get_solver

        with pytest.warns(DeprecationWarning):
            on = EngineSpec.from_use_bruteforce(True)
        with pytest.warns(DeprecationWarning):
            off = EngineSpec.from_use_bruteforce(
                False, default="branch_and_bound"
            )
        assert get_solver(on.name).name == "bruteforce"
        assert get_solver(off.name).name == "branch_and_bound"

    def test_none_flag_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine = EngineSpec.from_use_bruteforce(None, solver="greedy")
        assert engine.name == "greedy"

    def test_conflicting_selection_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SpecError, match="conflicting"):
                EngineSpec.from_use_bruteforce(True, solver="branch_and_bound")
