"""White-box tests of the buyer/seller agent state machines.

The protocol tests exercise agents end to end; these drive single agents
with hand-crafted inboxes to pin down each transition and error path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.core.market import SpectrumMarket
from repro.distributed.buyer_agent import BuyerAgent, buyer_agent_id, seller_agent_id
from repro.distributed.messages import (
    Evict,
    Invite,
    InviteAccept,
    InviteDecline,
    Leave,
    ProposalReject,
    Propose,
    SellerStageNotify,
    TransferApply,
    TransferConfirm,
    TransferOffer,
    TransferReject,
    WaitlistUpdate,
)
from repro.distributed.seller_agent import SellerAgent
from repro.distributed.simulator import SlotContext
from repro.distributed.transition import adaptive_policy, default_policy
from repro.errors import ProtocolError
from repro.interference.generators import interference_map_from_edge_lists


def make_market():
    """2 channels, 3 buyers; buyers 0-1 interfere on channel 0."""
    utilities = np.array(
        [
            [5.0, 3.0],
            [6.0, 1.0],
            [0.0, 2.0],
        ]
    )
    imap = interference_map_from_edge_lists(3, [[(0, 1)], []])
    return SpectrumMarket(utilities, imap)


class Recorder:
    """Capture agent sends as (destination, message) pairs."""

    def __init__(self):
        self.sent: List[Tuple[str, object]] = []

    def ctx(self, now: int) -> SlotContext:
        return SlotContext(
            now=now,
            rng=np.random.default_rng(0),
            _send=lambda dst, msg: self.sent.append((dst, msg)),
        )

    def of_type(self, message_type):
        return [(d, m) for d, m in self.sent if isinstance(m, message_type)]


class TestBuyerStageOne:
    def test_first_slot_proposes_to_best_channel(self):
        buyer = BuyerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        buyer.step([], recorder.ctx(0))
        proposals = recorder.of_type(Propose)
        assert len(proposals) == 1
        assert proposals[0][0] == seller_agent_id(0)  # ch0 worth 5 > 3

    def test_stop_and_wait_on_outstanding_proposal(self):
        buyer = BuyerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        buyer.step([], recorder.ctx(0))
        buyer.step([], recorder.ctx(1))  # no reply yet -> no second proposal
        assert len(recorder.of_type(Propose)) == 1

    def test_rejection_moves_down_the_list(self):
        buyer = BuyerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        buyer.step([], recorder.ctx(0))
        buyer.step(
            [ProposalReject(seller_agent_id(0), 0)], recorder.ctx(1)
        )
        proposals = recorder.of_type(Propose)
        assert len(proposals) == 2
        assert proposals[1][0] == seller_agent_id(1)

    def test_waitlist_update_marks_matched(self):
        buyer = BuyerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        buyer.step([], recorder.ctx(0))
        update = WaitlistUpdate(
            seller_agent_id(0), 0, frozenset({0}), frozenset({0, 1})
        )
        buyer.step([update], recorder.ctx(1))
        assert buyer.current_channel == 0
        assert buyer.current_utility() == 5.0

    def test_eviction_resumes_proposing(self):
        buyer = BuyerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        buyer.step([], recorder.ctx(0))
        update = WaitlistUpdate(
            seller_agent_id(0), 0, frozenset({0}), frozenset({0})
        )
        buyer.step([update], recorder.ctx(1))
        buyer.step([Evict(seller_agent_id(0), 0)], recorder.ctx(2))
        proposals = recorder.of_type(Propose)
        assert len(proposals) == 2  # went on to channel 1
        assert buyer.current_channel is None or buyer.current_channel == 1

    def test_exhausted_list_enters_stage_two(self):
        buyer = BuyerAgent(2, make_market(), default_policy())  # only ch1 > 0
        recorder = Recorder()
        buyer.step([], recorder.ctx(0))
        buyer.step(
            [ProposalReject(seller_agent_id(1), 1)], recorder.ctx(1)
        )
        assert buyer.stage == 2

    def test_rule_three_notification_transitions(self):
        buyer = BuyerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        buyer.step([], recorder.ctx(0))
        update = WaitlistUpdate(
            seller_agent_id(0), 0, frozenset({0}), frozenset({0})
        )
        buyer.step([update], recorder.ctx(1))
        assert buyer.stage == 1
        buyer.step([SellerStageNotify(seller_agent_id(0), 0)], recorder.ctx(2))
        assert buyer.stage == 2

    def test_unknown_message_raises(self):
        buyer = BuyerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        with pytest.raises(ProtocolError):
            buyer.step([Propose("buyer:9", 9)], recorder.ctx(0))


class TestBuyerStageTwo:
    def make_stage2_buyer(self, matched_channel=1):
        """Buyer 0 matched to her SECOND choice, already in Stage II."""
        buyer = BuyerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        buyer.step([], recorder.ctx(0))  # proposes ch0
        buyer.step(
            [ProposalReject(seller_agent_id(0), 0)], recorder.ctx(1)
        )  # proposes ch1
        update = WaitlistUpdate(
            seller_agent_id(1), 1, frozenset({0}), frozenset({0})
        )
        buyer.step([update], recorder.ctx(2))
        buyer.step([SellerStageNotify(seller_agent_id(1), 1)], recorder.ctx(3))
        assert buyer.stage == 2
        return buyer, recorder

    def test_applies_to_strictly_better_channels(self):
        buyer, recorder = self.make_stage2_buyer()
        applications = recorder.of_type(TransferApply)
        assert len(applications) == 1
        assert applications[0][0] == seller_agent_id(0)  # 5 > 3

    def test_offer_confirmed_and_old_seller_notified(self):
        buyer, recorder = self.make_stage2_buyer()
        buyer.step([TransferOffer(seller_agent_id(0), 0)], recorder.ctx(4))
        assert buyer.current_channel == 0
        confirms = recorder.of_type(TransferConfirm)
        leaves = recorder.of_type(Leave)
        assert confirms and confirms[0][0] == seller_agent_id(0)
        assert leaves and leaves[0][0] == seller_agent_id(1)

    def test_stale_offer_declined(self):
        buyer, recorder = self.make_stage2_buyer()
        # A better invitation lands first...
        buyer.step([Invite(seller_agent_id(0), 0)], recorder.ctx(4))
        assert buyer.current_channel == 0
        # ...then the (now worthless) offer for the same channel arrives.
        # current_channel is already 0, value not strictly better -> decline.
        buyer.step([TransferOffer(seller_agent_id(0), 0)], recorder.ctx(5))
        declines = recorder.of_type(
            __import__("repro.distributed.messages", fromlist=["TransferDecline"]).TransferDecline
        )
        assert declines

    def test_invite_declined_when_not_better(self):
        buyer, recorder = self.make_stage2_buyer()
        # Invite to the channel she already holds the equal of: ch1 (3.0)
        # while matched to ch1 -> not strictly better.
        buyer.step([Invite(seller_agent_id(1), 1)], recorder.ctx(4))
        assert recorder.of_type(InviteDecline)

    def test_done_when_nothing_left(self):
        buyer, recorder = self.make_stage2_buyer()
        assert not buyer.is_done()  # application outstanding
        buyer.step([TransferReject(seller_agent_id(0), 0)], recorder.ctx(4))
        assert buyer.is_done()


class TestSellerStageOne:
    def test_accepts_compatible_proposers(self):
        seller = SellerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        seller.step(
            [Propose(buyer_agent_id(0), 0), Propose(buyer_agent_id(2), 2)],
            recorder.ctx(0),
        )
        # 0 and 2 do not interfere on channel 0: both are waitlisted (2's
        # zero price is harmless -- real buyers never propose at price 0).
        assert seller.waitlist == {0, 2}
        updates = recorder.of_type(WaitlistUpdate)
        assert updates and updates[0][1].coalition == frozenset({0, 2})

    def test_eviction_on_better_conflicting_proposal(self):
        seller = SellerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        seller.step([Propose(buyer_agent_id(0), 0)], recorder.ctx(0))
        seller.step([Propose(buyer_agent_id(1), 1)], recorder.ctx(1))
        assert seller.waitlist == {1}  # 6 beats 5, they interfere
        assert recorder.of_type(Evict)

    def test_waitlist_update_carries_cumulative_proposers(self):
        seller = SellerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        seller.step([Propose(buyer_agent_id(0), 0)], recorder.ctx(0))
        seller.step([Propose(buyer_agent_id(1), 1)], recorder.ctx(1))
        last_update = recorder.of_type(WaitlistUpdate)[-1][1]
        assert last_update.proposers_so_far == frozenset({0, 1})

    def test_applications_queue_until_transition(self):
        seller = SellerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        seller.step([TransferApply(buyer_agent_id(2), 2)], recorder.ctx(0))
        # Still Stage I: no reply yet, application queued.
        assert not recorder.of_type(TransferOffer)
        assert not recorder.of_type(TransferReject)
        assert not seller.is_done()

    def test_confirm_without_offer_raises(self):
        seller = SellerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        with pytest.raises(ProtocolError):
            seller.step([TransferConfirm(buyer_agent_id(0), 0)], recorder.ctx(0))

    def test_unexpected_invite_accept_raises(self):
        seller = SellerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        with pytest.raises(ProtocolError):
            seller.step([InviteAccept(buyer_agent_id(0), 0)], recorder.ctx(0))

    def test_leave_shrinks_waitlist(self):
        seller = SellerAgent(0, make_market(), default_policy())
        recorder = Recorder()
        seller.step([Propose(buyer_agent_id(0), 0)], recorder.ctx(0))
        seller.step([Leave(buyer_agent_id(0), 0)], recorder.ctx(1))
        assert seller.waitlist == set()


class TestSellerStageTwo:
    def make_transitioned_seller(self):
        """A seller pushed past the default transition slot."""
        market = make_market()
        seller = SellerAgent(0, market, default_policy())
        recorder = Recorder()
        seller.step([Propose(buyer_agent_id(0), 0)], recorder.ctx(0))
        default_slot = market.num_buyers * market.num_channels
        seller.step([], recorder.ctx(default_slot))
        assert seller.phase >= 2
        return market, seller, recorder, default_slot

    def test_transition_notifies_waitlist(self):
        _, _, recorder, _ = self.make_transitioned_seller()
        assert recorder.of_type(SellerStageNotify)

    def test_proposals_rejected_after_transition(self):
        _, seller, recorder, slot = self.make_transitioned_seller()
        seller.step([Propose(buyer_agent_id(2), 2)], recorder.ctx(slot + 1))
        assert recorder.of_type(ProposalReject)
        assert 2 not in seller.waitlist

    def test_compatible_application_gets_offer(self):
        _, seller, recorder, slot = self.make_transitioned_seller()
        # Buyer 2 does not interfere with buyer 0 on channel 0... but her
        # price there is 0. Use buyer 1 (interferes) and check rejection,
        # then a fresh seller on channel 1 for the offer path.
        seller.step([TransferApply(buyer_agent_id(1), 1)], recorder.ctx(slot + 1))
        assert recorder.of_type(TransferReject)

    def test_offer_and_confirm_on_clean_channel(self):
        market = make_market()
        seller = SellerAgent(1, market, default_policy())
        recorder = Recorder()
        default_slot = market.num_buyers * market.num_channels
        seller.step([], recorder.ctx(default_slot))
        seller.step(
            [TransferApply(buyer_agent_id(2), 2)], recorder.ctx(default_slot + 1)
        )
        offers = recorder.of_type(TransferOffer)
        assert offers and offers[0][0] == buyer_agent_id(2)
        seller.step(
            [TransferConfirm(buyer_agent_id(2), 2)], recorder.ctx(default_slot + 2)
        )
        assert 2 in seller.waitlist

    def test_rejected_applicant_is_invited_in_phase_two(self):
        market = make_market()
        seller = SellerAgent(0, market, default_policy())
        recorder = Recorder()
        seller.step([Propose(buyer_agent_id(1), 1)], recorder.ctx(0))  # holds 1
        default_slot = market.num_buyers * market.num_channels
        seller.step([], recorder.ctx(default_slot))  # transition
        # Buyer 0 applies; interferes with 1 -> rejected into invite list.
        seller.step(
            [TransferApply(buyer_agent_id(0), 0)], recorder.ctx(default_slot + 1)
        )
        assert recorder.of_type(TransferReject)
        # Buyer 1 leaves; phase 2 begins after the phase-1 horizon.
        seller.step([Leave(buyer_agent_id(1), 1)], recorder.ctx(default_slot + 2))
        horizon = default_policy().phase1_duration(market.num_channels)
        seller.step([], recorder.ctx(default_slot + horizon + 1))
        invites = recorder.of_type(Invite)
        assert invites and invites[0][0] == buyer_agent_id(0)
        # Buyer declines -> seller done.
        seller.step(
            [InviteDecline(buyer_agent_id(0), 0)],
            recorder.ctx(default_slot + horizon + 2),
        )
        assert seller.is_done()
