"""Tests for the ARQ reliable-transport layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.core.two_stage import run_two_stage
from repro.distributed.messages import Message
from repro.distributed.network import DelayedNetwork, LossyNetwork
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.simulator import Agent, TimeSlottedSimulator
from repro.distributed.transition import default_policy
from repro.distributed.transport import (
    AckFrame,
    DataFrame,
    ReliableAgent,
    wrap_reliable,
)
from repro.errors import SimulationError
from repro.workloads.scenarios import paper_simulation_market, toy_example_market


@dataclass(frozen=True)
class Note(Message):
    value: int


class Streamer(Agent):
    """Sends `count` notes to a sink, one per slot."""

    def __init__(self, target: str, count: int) -> None:
        super().__init__("streamer", priority=0)
        self.target = target
        self.remaining = count

    def step(self, inbox, ctx):
        if self.remaining > 0:
            ctx.send(self.target, Note(self.agent_id, self.remaining))
            self.remaining -= 1

    def is_done(self):
        return self.remaining == 0

    def snapshot(self):
        return {"remaining": self.remaining}

    def restore(self, state):
        self.remaining = state["remaining"]


class Sink(Agent):
    def __init__(self) -> None:
        super().__init__("sink", priority=1)
        self.received: List[int] = []

    def step(self, inbox, ctx):
        for message in inbox:
            self.received.append(message.value)

    def is_done(self):
        return True

    def snapshot(self):
        return {"received": list(self.received)}

    def restore(self, state):
        self.received = list(state["received"])


class TestTransportSemantics:
    def run_stream(self, network, count=20, seed=0, interval=3):
        streamer = Streamer("sink", count)
        sink = Sink()
        agents = wrap_reliable([streamer, sink], retransmit_interval=interval)
        sim = TimeSlottedSimulator(agents, network=network, seed=seed)
        sim.run(max_slots=20_000)
        return sink, agents

    def test_lossless_passthrough(self):
        sink, _ = self.run_stream(network=None)
        assert sink.received == list(range(20, 0, -1))

    def test_exactly_once_in_order_under_loss(self):
        sink, agents = self.run_stream(network=LossyNetwork(0.4), seed=7)
        assert sink.received == list(range(20, 0, -1))  # no dups, no gaps
        assert agents[0].retransmissions > 0  # loss actually exercised

    def test_in_order_under_reordering_jitter(self):
        sink, _ = self.run_stream(network=DelayedNetwork(1, 6), seed=3)
        assert sink.received == list(range(20, 0, -1))

    def test_loss_plus_jitter(self):
        sink, _ = self.run_stream(
            network=LossyNetwork(0.3, base=DelayedNetwork(1, 3)), seed=5
        )
        assert sink.received == list(range(20, 0, -1))

    def test_unacknowledged_counter_drains(self):
        _, agents = self.run_stream(network=LossyNetwork(0.4), seed=11)
        assert all(agent.unacknowledged == 0 for agent in agents)

    def test_bare_message_to_wrapped_agent_rejected(self):
        class Rude(Agent):
            def __init__(self):
                super().__init__("rude", priority=0)
                self.sent = False

            def step(self, inbox, ctx):
                if not self.sent:
                    self.sent = True
                    ctx.send("sink", Note(self.agent_id, 1))

            def is_done(self):
                return self.sent

        sink = ReliableAgent(Sink())
        sim = TimeSlottedSimulator([Rude(), sink])
        with pytest.raises(SimulationError):
            sim.run(max_slots=10)

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            ReliableAgent(Sink(), retransmit_interval=0)

    def test_frames_have_monotone_seq(self):
        # White-box: sequence numbers per destination start at 0 and step 1.
        agent = ReliableAgent(Streamer("sink", 3))
        sent: List[DataFrame] = []

        from repro.distributed.simulator import SlotContext

        ctx = SlotContext(now=0, rng=np.random.default_rng(0),
                          _send=lambda dst, msg: sent.append(msg))
        agent.step([], ctx)
        agent.step([], ctx)
        assert [frame.seq for frame in sent] == [0, 1]


class TestTransportUnderFaults:
    """ARQ edge cases around node crashes and checkpoint restarts."""

    def test_retransmission_to_crashed_then_restarted_peer(self):
        """Frames sent into a dead host are lost; ARQ keeps retransmitting
        until the checkpoint-restarted peer finally acknowledges, and the
        stream arrives exactly once, in order."""
        from repro.distributed.faults import CrashFault, FaultSchedule

        streamer = Streamer("sink", 8)
        sink = Sink()
        agents = wrap_reliable([streamer, sink], retransmit_interval=2)
        schedule = FaultSchedule(
            crashes=[CrashFault("sink", crash_slot=2, restart_slot=9)]
        )
        sim = TimeSlottedSimulator(agents, fault_schedule=schedule)
        sim.run(max_slots=10_000)
        assert sink.received == list(range(8, 0, -1))  # no dups, no gaps
        assert agents[0].retransmissions > 0
        assert sim.messages_lost_to_crash > 0
        assert all(agent.unacknowledged == 0 for agent in agents)

    def test_retransmission_to_crashed_peer_under_loss(self):
        from repro.distributed.faults import CrashFault, FaultSchedule

        streamer = Streamer("sink", 10)
        sink = Sink()
        agents = wrap_reliable([streamer, sink], retransmit_interval=2)
        schedule = FaultSchedule(
            crashes=[CrashFault("sink", crash_slot=3, restart_slot=8)]
        )
        sim = TimeSlottedSimulator(
            agents, network=LossyNetwork(0.3), seed=21, fault_schedule=schedule
        )
        sim.run(max_slots=20_000)
        assert sink.received == list(range(10, 0, -1))

    def test_snapshot_restore_round_trip_preserves_send_state(self):
        """Sequence counters and the unacked buffer survive the round
        trip: the restored clone's next frame continues the sequence."""
        sent: List[DataFrame] = []
        from repro.distributed.simulator import SlotContext

        ctx = SlotContext(
            now=0,
            rng=np.random.default_rng(0),
            _send=lambda dst, msg: sent.append(msg),
        )
        original = ReliableAgent(Streamer("sink", 5))
        original.step([], ctx)
        original.step([], ctx)
        state = original.snapshot()

        clone = ReliableAgent(Streamer("sink", 5))
        clone.restore(state)
        assert clone.unacknowledged == 2  # both frames still unacked
        clone.step([], ctx)
        data_frames = [m for m in sent if isinstance(m, DataFrame)]
        # The clone picks up at seq 2 / payload 3, not back at seq 0.
        assert [f.seq for f in data_frames[-1:]] == [2]
        assert data_frames[-1].payload.value == 3

    def test_snapshot_restore_round_trip_preserves_holdback(self):
        """Receive-side dedup and hold-back state survive the round trip:
        the clone still refuses duplicates and releases held-back frames
        once the gap closes."""
        from repro.distributed.simulator import SlotContext

        outgoing: List[Message] = []
        ctx = SlotContext(
            now=0,
            rng=np.random.default_rng(0),
            _send=lambda dst, msg: outgoing.append(msg),
        )
        receiver = ReliableAgent(Sink())
        frame0 = DataFrame("streamer", 0, Note("streamer", 100))
        frame2 = DataFrame("streamer", 2, Note("streamer", 102))
        receiver.step([frame0, frame2], ctx)  # 0 delivered, 2 held back
        assert receiver.inner.received == [100]

        clone = ReliableAgent(Sink())
        clone.restore(receiver.snapshot())
        assert clone.inner.received == [100]
        # A duplicate of seq 0 is still recognised as such...
        clone.step([frame0], ctx)
        assert clone.inner.received == [100]
        # ...and closing the gap releases the held-back frame in order.
        clone.step([DataFrame("streamer", 1, Note("streamer", 101))], ctx)
        assert clone.inner.received == [100, 101, 102]


class TestMatchingOverLossyNetworks:
    """End to end: the protocol regains liveness with ARQ."""

    @pytest.mark.parametrize("loss", [0.2, 0.5])
    def test_toy_example_exact_outcome_under_loss(self, loss):
        market = toy_example_market()
        reference = run_distributed_matching(market, policy=default_policy())
        lossy = run_distributed_matching(
            market,
            policy=default_policy(),
            network=LossyNetwork(loss),
            seed=3,
            reliable_transport=True,
            max_slots=100_000,
        )
        assert lossy.matching == reference.matching
        assert lossy.social_welfare == pytest.approx(30.0)
        assert lossy.messages_dropped > 0

    def test_random_market_matches_centralized(self):
        market = paper_simulation_market(15, 4, np.random.default_rng(42))
        centralized = run_two_stage(market, record_trace=False)
        run = run_distributed_matching(
            market,
            policy=default_policy(),
            network=LossyNetwork(0.3),
            seed=9,
            reliable_transport=True,
            max_slots=200_000,
        )
        assert run.matching == centralized.matching

    def test_transport_costs_messages_not_correctness(self):
        market = toy_example_market()
        plain = run_distributed_matching(market, policy=default_policy())
        wrapped = run_distributed_matching(
            market, policy=default_policy(), reliable_transport=True
        )
        assert wrapped.matching == plain.matching
        # Ack traffic roughly doubles the message count on a clean network.
        assert wrapped.messages_sent > plain.messages_sent
