"""Tests for the generic time-slotted simulation kernel.

These deliberately use tiny ad-hoc protocols unrelated to spectrum
matching: the kernel must stand on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import pytest

from repro.distributed.messages import Message
from repro.distributed.network import DelayedNetwork
from repro.distributed.simulator import Agent, SlotContext, TimeSlottedSimulator
from repro.errors import SimulationError


@dataclass(frozen=True)
class Ping(Message):
    payload: int


class Echo(Agent):
    """Replies to every Ping with payload+1; done when idle."""

    def __init__(self, agent_id: str, priority: int = 1) -> None:
        super().__init__(agent_id, priority=priority)
        self.seen: List[int] = []

    def step(self, inbox, ctx):
        for message in inbox:
            self.seen.append(message.payload)
            ctx.send(message.sender, Ping(self.agent_id, message.payload + 1))

    def is_done(self):
        return True


class Counter(Agent):
    """Sends `budget` pings to a target, one per slot; collects replies."""

    def __init__(self, agent_id: str, target: str, budget: int) -> None:
        super().__init__(agent_id, priority=0)
        self.target = target
        self.budget = budget
        self.replies: List[int] = []

    def step(self, inbox, ctx):
        for message in inbox:
            self.replies.append(message.payload)
        if self.budget > 0:
            self.budget -= 1
            ctx.send(self.target, Ping(self.agent_id, self.budget))

    def is_done(self):
        return self.budget == 0


class TestKernelBasics:
    def test_request_reply_round_trip(self):
        counter = Counter("c", "e", budget=3)
        echo = Echo("e")
        sim = TimeSlottedSimulator([counter, echo])
        slots = sim.run()
        assert counter.replies == [3, 2, 1]  # each payload echoed +1
        assert echo.seen == [2, 1, 0]
        # 3 send slots + 1 drain slot for the last reply.
        assert slots == 4
        assert sim.messages_sent == 6
        assert sim.messages_delivered == 6
        assert sim.messages_dropped == 0

    def test_priority_enables_same_slot_processing(self):
        # Echo has higher priority number -> steps after Counter, so a ping
        # sent in slot t is echoed in slot t.
        counter = Counter("c", "e", budget=1)
        echo = Echo("e", priority=1)
        sim = TimeSlottedSimulator([counter, echo])
        sim.run_slot()
        assert echo.seen == [0]

    def test_duplicate_agent_ids_rejected(self):
        with pytest.raises(SimulationError):
            TimeSlottedSimulator([Echo("x"), Echo("x")])

    def test_empty_population_rejected(self):
        with pytest.raises(SimulationError):
            TimeSlottedSimulator([])

    def test_unknown_destination_rejected(self):
        class Chatter(Agent):
            def step(self, inbox, ctx):
                ctx.send("ghost", Ping(self.agent_id, 0))

            def is_done(self):
                return False

        sim = TimeSlottedSimulator([Chatter("a")])
        with pytest.raises(SimulationError):
            sim.run_slot()

    def test_max_slots_raises_for_livelock(self):
        class Restless(Agent):
            def step(self, inbox, ctx):
                pass

            def is_done(self):
                return False

        sim = TimeSlottedSimulator([Restless("r")])
        with pytest.raises(SimulationError):
            sim.run(max_slots=10)

    def test_run_after_finish_rejected(self):
        sim = TimeSlottedSimulator([Echo("e")])
        sim.run()
        with pytest.raises(SimulationError):
            sim.run_slot()

    def test_agent_lookup(self):
        echo = Echo("e")
        sim = TimeSlottedSimulator([echo])
        assert sim.agent("e") is echo
        with pytest.raises(SimulationError):
            sim.agent("nope")


class TestDelayedDelivery:
    def test_fixed_delay_defers_processing(self):
        counter = Counter("c", "e", budget=1)
        echo = Echo("e")
        sim = TimeSlottedSimulator([counter, echo], network=DelayedNetwork(2, 2))
        sim.run()
        assert echo.seen == [0]
        assert counter.replies == [1]

    def test_delay_increases_slot_count(self):
        def run(delay):
            counter = Counter("c", "e", budget=2)
            sim = TimeSlottedSimulator(
                [counter, Echo("e")], network=DelayedNetwork(delay, delay)
            )
            return sim.run()

        assert run(3) > run(0)

    def test_random_delay_is_seed_deterministic(self):
        def run(seed):
            counter = Counter("c", "e", budget=5)
            sim = TimeSlottedSimulator(
                [counter, Echo("e")],
                network=DelayedNetwork(1, 4),
                seed=seed,
            )
            slots = sim.run()
            return slots, tuple(counter.replies)

        assert run(9) == run(9)
