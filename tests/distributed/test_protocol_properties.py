"""Property-based tests of the message-level protocol (hypothesis).

The strongest statement about the Section IV implementation is that,
under the default (synchronous-equivalent) transition rule, the
asynchronous message-passing run replays the centralised Algorithms 1+2
*exactly* -- on arbitrary markets, not just the sampled ones in
``test_protocol.py``.  These tests generate markets with hypothesis
(including degenerate interference and zero prices) and check that
equivalence plus the safety invariants that must survive every policy.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.market import SpectrumMarket
from repro.core.stability import is_individually_rational, is_nash_stable
from repro.core.two_stage import run_two_stage
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.transition import adaptive_policy, default_policy
from repro.interference.graph import InterferenceGraph, InterferenceMap


@st.composite
def small_markets(draw, max_buyers: int = 6, max_channels: int = 3):
    n = draw(st.integers(min_value=1, max_value=max_buyers))
    m = draw(st.integers(min_value=1, max_value=max_channels))
    utilities = np.array(
        [
            [
                draw(
                    st.one_of(
                        st.just(0.0),
                        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                    )
                )
                for _ in range(m)
            ]
            for _ in range(n)
        ]
    )
    possible_edges = [(j, k) for j in range(n) for k in range(j + 1, n)]
    graphs = []
    for _ in range(m):
        if possible_edges:
            edges = draw(
                st.lists(
                    st.sampled_from(possible_edges),
                    unique=True,
                    max_size=len(possible_edges),
                )
            )
        else:
            edges = []
        graphs.append(InterferenceGraph(n, edges))
    return SpectrumMarket(utilities, InterferenceMap(graphs))


@given(small_markets())
@settings(max_examples=60, deadline=None)
def test_default_policy_replays_centralized_exactly(market):
    centralized = run_two_stage(market, record_trace=False)
    distributed = run_distributed_matching(market, policy=default_policy())
    assert distributed.matching == centralized.matching


@given(small_markets())
@settings(max_examples=60, deadline=None)
def test_adaptive_policy_safety_invariants(market):
    result = run_distributed_matching(market, policy=adaptive_policy())
    assert result.matching.is_interference_free(market.interference)
    result.matching.assert_consistent()
    assert is_individually_rational(market, result.matching)


@given(small_markets())
@settings(max_examples=40, deadline=None)
def test_default_policy_outcome_nash_stable(market):
    result = run_distributed_matching(market, policy=default_policy())
    assert is_nash_stable(market, result.matching)


@given(small_markets())
@settings(max_examples=40, deadline=None)
def test_message_accounting_consistent(market):
    result = run_distributed_matching(market, policy=default_policy())
    assert result.messages_delivered + result.messages_dropped == (
        result.messages_sent
    )
    assert result.messages_dropped == 0  # reliable network
