"""End-to-end tests of the message-level protocol (Section IV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stability import is_individually_rational, is_nash_stable
from repro.core.two_stage import run_two_stage
from repro.distributed.network import DelayedNetwork
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.transition import (
    BuyerTransitionRule,
    SellerTransitionRule,
    TransitionPolicy,
    adaptive_policy,
    default_policy,
    neighbor_rule_policy,
)
from repro.errors import SpectrumMatchingError
from repro.workloads.scenarios import (
    counterexample_market,
    paper_simulation_market,
    toy_example_market,
)

ALL_POLICIES = [default_policy(), adaptive_policy(), neighbor_rule_policy()]


class TestToyExample:
    def test_default_rule_reaches_paper_outcome(self):
        market = toy_example_market()
        result = run_distributed_matching(market, policy=default_policy())
        assert result.social_welfare == pytest.approx(30.0)
        assert result.matching.coalition(0) == frozenset({1, 3})
        assert result.matching.coalition(1) == frozenset({2})
        assert result.matching.coalition(2) == frozenset({0, 4})

    def test_default_rule_pays_the_mn_wait(self):
        """The paper: the default rule needs ~MN + M + N slots (23 here)."""
        market = toy_example_market()
        result = run_distributed_matching(market, policy=default_policy())
        assert result.slots >= market.num_buyers * market.num_channels

    def test_adaptive_rules_finish_much_earlier(self):
        market = toy_example_market()
        default = run_distributed_matching(market, policy=default_policy())
        adaptive = run_distributed_matching(market, policy=adaptive_policy())
        assert adaptive.slots < default.slots
        assert adaptive.social_welfare == pytest.approx(default.social_welfare)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_all_policies_reach_welfare_30(self, policy):
        market = toy_example_market()
        result = run_distributed_matching(market, policy=policy)
        assert result.social_welfare == pytest.approx(30.0)


class TestEquivalenceWithCentralized:
    """With the default rule the async run must replay Algorithm 1+2."""

    @pytest.mark.parametrize("seed", range(8))
    def test_default_rule_equals_centralized(self, seed):
        market = paper_simulation_market(
            14, 4, np.random.default_rng([201, seed])
        )
        centralized = run_two_stage(market, record_trace=False)
        distributed = run_distributed_matching(market, policy=default_policy())
        assert distributed.matching == centralized.matching

    def test_counterexample_market_equivalence(self):
        market = counterexample_market()
        centralized = run_two_stage(market)
        distributed = run_distributed_matching(market, policy=default_policy())
        assert distributed.matching == centralized.matching


class TestAdaptivePolicies:
    @pytest.mark.parametrize("seed", range(6))
    def test_outcome_feasible_and_rational(self, seed):
        market = paper_simulation_market(
            16, 4, np.random.default_rng([202, seed])
        )
        result = run_distributed_matching(market, policy=adaptive_policy())
        assert result.matching.is_interference_free(market.interference)
        assert is_individually_rational(market, result.matching)

    @pytest.mark.parametrize("seed", range(6))
    def test_adaptive_never_slower_than_default(self, seed):
        market = paper_simulation_market(
            12, 3, np.random.default_rng([203, seed])
        )
        default = run_distributed_matching(market, policy=default_policy())
        adaptive = run_distributed_matching(market, policy=adaptive_policy())
        assert adaptive.slots <= default.slots

    def test_conservative_threshold_recovers_centralized_result(self):
        market = paper_simulation_market(10, 3, np.random.default_rng(204))
        centralized = run_two_stage(market, record_trace=False)
        # A tiny threshold means "almost never transition early": the
        # default slot fallback fires and the outcome matches exactly.
        policy = adaptive_policy(buyer_threshold=1e-9, seller_threshold=1e-9)
        result = run_distributed_matching(market, policy=policy)
        assert result.matching == centralized.matching

    def test_aggressive_threshold_is_still_safe(self):
        market = paper_simulation_market(15, 4, np.random.default_rng(205))
        policy = adaptive_policy(buyer_threshold=0.9, seller_threshold=0.9)
        result = run_distributed_matching(market, policy=policy)
        assert result.matching.is_interference_free(market.interference)
        assert is_individually_rational(market, result.matching)


class TestMessageDelays:
    @pytest.mark.parametrize("delay", [1, 2])
    def test_fixed_delays_preserve_outcome_welfare(self, delay):
        market = toy_example_market()
        baseline = run_distributed_matching(market, policy=default_policy())
        delayed = run_distributed_matching(
            market,
            policy=default_policy(),
            network=DelayedNetwork(delay, delay),
        )
        assert delayed.matching.is_interference_free(market.interference)
        # Fixed uniform delays only stretch time; they cannot reorder the
        # lockstep rounds, so the outcome welfare is unchanged.
        assert delayed.social_welfare == pytest.approx(baseline.social_welfare)
        assert delayed.slots >= baseline.slots

    def test_random_delays_remain_feasible(self):
        market = paper_simulation_market(12, 3, np.random.default_rng(206))
        result = run_distributed_matching(
            market,
            policy=default_policy(),
            network=DelayedNetwork(1, 3),
            seed=11,
        )
        assert result.matching.is_interference_free(market.interference)
        assert is_individually_rational(market, result.matching)


class TestAccounting:
    def test_message_counters_consistent(self):
        market = toy_example_market()
        result = run_distributed_matching(market, policy=default_policy())
        assert result.messages_delivered == result.messages_sent
        assert result.messages_dropped == 0

    def test_nash_stability_with_default_rule(self):
        market = paper_simulation_market(14, 4, np.random.default_rng(207))
        result = run_distributed_matching(market, policy=default_policy())
        assert is_nash_stable(market, result.matching)


class TestPolicyValidation:
    def test_bad_thresholds_rejected(self):
        with pytest.raises(SpectrumMatchingError):
            TransitionPolicy(buyer_threshold=0.0)
        with pytest.raises(SpectrumMatchingError):
            TransitionPolicy(seller_threshold=1.0)
        with pytest.raises(SpectrumMatchingError):
            TransitionPolicy(phase1_grace_slots=-1)

    def test_policy_constructors(self):
        assert default_policy().buyer_rule is BuyerTransitionRule.DEFAULT
        assert (
            adaptive_policy().seller_rule
            is SellerTransitionRule.BETTER_PROPOSAL_PROBABILITY
        )
        assert (
            neighbor_rule_policy().buyer_rule
            is BuyerTransitionRule.NEIGHBORS_PROPOSED
        )


class TestWarmStart:
    """Warm-seeded runs: the protocol as a Stage-II-only re-matcher."""

    def test_toy_example_from_stage_one_seed(self):
        from repro.core.deferred_acceptance import deferred_acceptance
        from repro.core.transfer_invitation import transfer_and_invitation

        market = toy_example_market()
        stage_one = deferred_acceptance(market)
        centralized = transfer_and_invitation(
            market, stage_one.matching, record_trace=False
        )
        warm = run_distributed_matching(
            market, policy=default_policy(), initial_matching=stage_one.matching
        )
        assert warm.matching == centralized.matching
        assert warm.social_welfare == pytest.approx(30.0)

    def test_warm_run_is_much_shorter_than_cold(self):
        from repro.core.deferred_acceptance import deferred_acceptance

        market = toy_example_market()
        stage_one = deferred_acceptance(market)
        cold = run_distributed_matching(market, policy=default_policy())
        warm = run_distributed_matching(
            market, policy=default_policy(), initial_matching=stage_one.matching
        )
        assert warm.slots < cold.slots / 2

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_centralized_stage_two(self, seed):
        from repro.core.deferred_acceptance import deferred_acceptance
        from repro.core.transfer_invitation import transfer_and_invitation

        market = paper_simulation_market(
            18, 4, np.random.default_rng([210, seed])
        )
        stage_one = deferred_acceptance(market)
        centralized = transfer_and_invitation(
            market, stage_one.matching, record_trace=False
        )
        warm = run_distributed_matching(
            market, policy=default_policy(), initial_matching=stage_one.matching
        )
        assert warm.matching == centralized.matching

    def test_infeasible_seed_rejected(self):
        from repro.core.matching import Matching
        from repro.errors import ProtocolError

        market = toy_example_market()
        bad = Matching(market.num_channels, market.num_buyers)
        bad.match(0, 0)
        bad.match(1, 0)  # buyers 1-2 interfere on channel a
        with pytest.raises(ProtocolError):
            run_distributed_matching(
                market, policy=default_policy(), initial_matching=bad
            )

    def test_wrong_dimensions_rejected(self):
        from repro.core.matching import Matching
        from repro.errors import ProtocolError

        market = toy_example_market()
        wrong = Matching(2, 2)
        with pytest.raises(ProtocolError):
            run_distributed_matching(
                market, policy=default_policy(), initial_matching=wrong
            )

    def test_empty_seed_equals_pure_stage_two(self):
        """Seeding an empty matching = every buyer starts unmatched in
        Stage II: they transfer onto channels directly."""
        from repro.core.matching import Matching
        from repro.core.transfer_invitation import transfer_and_invitation

        market = paper_simulation_market(10, 3, np.random.default_rng(211))
        empty = Matching(market.num_channels, market.num_buyers)
        centralized = transfer_and_invitation(market, empty, record_trace=False)
        warm = run_distributed_matching(
            market, policy=default_policy(), initial_matching=empty
        )
        assert warm.matching == centralized.matching


class TestEventTracing:
    def test_events_empty_by_default(self):
        market = toy_example_market()
        result = run_distributed_matching(market, policy=default_policy())
        assert result.events == ()

    def test_events_recorded_when_requested(self):
        market = toy_example_market()
        result = run_distributed_matching(
            market, policy=default_policy(), record_events=True
        )
        assert len(result.events) == result.messages_sent
        types = {event.message_type for event in result.events}
        assert "Propose" in types
        assert "TransferApply" in types
        assert all(not event.dropped for event in result.events)

    def test_events_mark_drops_on_lossy_networks(self):
        from repro.distributed.network import LossyNetwork

        market = toy_example_market()
        result = run_distributed_matching(
            market,
            policy=default_policy(),
            network=LossyNetwork(0.3),
            seed=3,
            reliable_transport=True,
            record_events=True,
            max_slots=50_000,
        )
        dropped = [event for event in result.events if event.dropped]
        assert len(dropped) == result.messages_dropped
        assert dropped  # 30% loss must drop something

    def test_timeline_rendering(self):
        from repro.analysis.visualization import render_protocol_timeline

        market = toy_example_market()
        result = run_distributed_matching(
            market, policy=adaptive_policy(), record_events=True
        )
        art = render_protocol_timeline(result.events)
        assert "Propose" in art
        assert "slot" in art.splitlines()[0]

    def test_timeline_subsampling(self):
        from repro.analysis.visualization import render_protocol_timeline

        market = paper_simulation_market(15, 4, np.random.default_rng(208))
        result = run_distributed_matching(
            market, policy=default_policy(), record_events=True
        )
        art = render_protocol_timeline(result.events, max_rows=5)
        # header + at most 5 rows
        assert len(art.splitlines()) <= 6

    def test_timeline_without_events(self):
        from repro.analysis.visualization import render_protocol_timeline

        assert "no events" in render_protocol_timeline(())
