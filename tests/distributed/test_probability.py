"""Tests for the transition-probability estimates (eqs. 7-9)."""

from __future__ import annotations

import math

import pytest

from repro.distributed.probability import (
    better_proposal_probability,
    better_proposal_probability_single_round,
    eviction_probability,
    eviction_probability_single_round,
    uniform_price_cdf,
)
from repro.errors import SpectrumMatchingError


class TestUniformCdf:
    def test_clamps(self):
        assert uniform_price_cdf(-0.5) == 0.0
        assert uniform_price_cdf(0.0) == 0.0
        assert uniform_price_cdf(0.25) == 0.25
        assert uniform_price_cdf(1.0) == 1.0
        assert uniform_price_cdf(7.0) == 1.0


class TestEvictionSingleRound:
    def test_no_unseen_neighbours_means_no_risk(self):
        assert eviction_probability_single_round(0, 5, 0.5) == 0.0

    def test_unbeatable_price_means_no_risk(self):
        # F(b)=1: no rival can strictly outbid.
        assert eviction_probability_single_round(4, 5, 1.0) == pytest.approx(0.0)

    def test_closed_form_single_neighbour(self):
        # n=1: p = (1/M) * (1 - F(b)).
        p = eviction_probability_single_round(1, 4, 0.3)
        assert p == pytest.approx((1 / 4) * (1 - 0.3))

    def test_closed_form_two_neighbours(self):
        n, m, b = 2, 3, 0.5
        expected = 0.0
        for x in (1, 2):
            binom = math.comb(n, x) * (1 / m) ** x * (1 - 1 / m) ** (n - x)
            expected += binom * (1 - uniform_price_cdf(b) ** x)
        assert eviction_probability_single_round(n, m, b) == pytest.approx(expected)

    def test_monotone_in_neighbours(self):
        values = [
            eviction_probability_single_round(n, 5, 0.4) for n in range(0, 6)
        ]
        assert values == sorted(values)

    def test_monotone_in_price(self):
        lo = eviction_probability_single_round(3, 5, 0.2)
        hi = eviction_probability_single_round(3, 5, 0.9)
        assert hi < lo

    def test_invalid_inputs(self):
        with pytest.raises(SpectrumMatchingError):
            eviction_probability_single_round(-1, 5, 0.5)
        with pytest.raises(SpectrumMatchingError):
            eviction_probability_single_round(1, 0, 0.5)


class TestEvictionCompounded:
    def test_decreases_with_round_index(self):
        """The paper: 'P^k decreases with k, so it is more secure for a
        buyer to commence Stage II at a later round.'"""
        values = [
            eviction_probability(k, 3, 4, 10, 0.5) for k in (1, 10, 20, 39)
        ]
        assert values == sorted(values, reverse=True)

    def test_horizon_exhausted_is_zero(self):
        # k beyond MN: no rounds left to be evicted in.
        assert eviction_probability(41, 3, 4, 10, 0.5) == 0.0

    def test_round_one_matches_formula(self):
        p = eviction_probability_single_round(2, 4, 0.5)
        expected = 1.0 - (1.0 - p) ** (4 * 10)
        assert eviction_probability(1, 2, 4, 10, 0.5) == pytest.approx(expected)

    def test_bad_round_index(self):
        with pytest.raises(SpectrumMatchingError):
            eviction_probability(0, 2, 4, 10, 0.5)

    def test_probability_range(self):
        for k in (1, 5, 20):
            value = eviction_probability(k, 4, 5, 8, 0.3)
            assert 0.0 <= value <= 1.0


class TestBetterProposal:
    def test_theta_zero_means_no_improvement_possible(self):
        # Every better-priced newcomer necessarily interferes.
        assert better_proposal_probability_single_round(
            5, 4, 0.5, theta=0.0
        ) == pytest.approx(0.0)

    def test_theta_one_reduces_to_eviction_form(self):
        # With theta=1 the bracket becomes 1 - F(b)^y, i.e. the buyer-side
        # formula with the (M-1)/M complement convention of eq. (9).
        n, m, b = 3, 4, 0.5
        expected = 0.0
        for y in range(1, n + 1):
            binom = math.comb(n, y) * (1 / m) ** y * ((m - 1) / m) ** (n - y)
            expected += binom * (1 - uniform_price_cdf(b) ** y)
        value = better_proposal_probability_single_round(n, m, b, theta=1.0)
        assert value == pytest.approx(expected)

    def test_monotone_in_theta(self):
        values = [
            better_proposal_probability_single_round(4, 5, 0.5, theta=t)
            for t in (0.0, 0.3, 0.7, 1.0)
        ]
        assert values == sorted(values)

    def test_invalid_theta(self):
        with pytest.raises(SpectrumMatchingError):
            better_proposal_probability_single_round(2, 3, 0.5, theta=1.5)

    def test_compounded_decreases_with_k(self):
        """Q^k also decreases with k (Section IV-B)."""
        values = [
            better_proposal_probability(k, 5, 4, 10, 0.4, 0.5)
            for k in (1, 10, 25, 40)
        ]
        assert values == sorted(values, reverse=True)

    def test_compounded_range(self):
        for k in (1, 7, 30):
            value = better_proposal_probability(k, 6, 4, 12, 0.6, 0.4)
            assert 0.0 <= value <= 1.0

    def test_bad_round_index(self):
        with pytest.raises(SpectrumMatchingError):
            better_proposal_probability(0, 2, 3, 5, 0.5, 0.5)
