"""Failure-injection tests: which guarantees survive a misbehaving network.

The paper assumes reliable synchronous delivery.  These tests document the
boundary: interference-freedom (safety) survives everything we throw at
the protocol, while liveness requires reliability -- with message loss the
stop-and-wait handshakes deadlock and the kernel's termination guard
reports it, rather than the protocol silently producing garbage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.network import DelayedNetwork, LossyNetwork, ReliableNetwork
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.transition import default_policy
from repro.errors import SimulationError
from repro.workloads.scenarios import paper_simulation_market, toy_example_market


class TestLossyNetwork:
    def test_loss_rate_validation(self):
        with pytest.raises(SimulationError):
            LossyNetwork(loss_rate=1.1)
        with pytest.raises(SimulationError):
            LossyNetwork(loss_rate=-0.1)

    def test_total_blackout_drops_everything(self):
        """loss_rate=1.0 is legal: it expresses a total-blackout window."""
        network = LossyNetwork(loss_rate=1.0)
        rng = np.random.default_rng(0)
        assert all(network.route(0, rng) is None for _ in range(100))

    def test_zero_loss_behaves_like_reliable(self):
        market = toy_example_market()
        lossless = run_distributed_matching(
            market, policy=default_policy(), network=LossyNetwork(0.0)
        )
        reliable = run_distributed_matching(
            market, policy=default_policy(), network=ReliableNetwork()
        )
        assert lossless.matching == reliable.matching

    def test_heavy_loss_breaks_liveness_loudly(self):
        """A lost proposal reply deadlocks stop-and-wait; the kernel's
        termination guard must surface that as an error, not a hang or a
        silent partial result."""
        market = paper_simulation_market(10, 3, np.random.default_rng(300))
        with pytest.raises(SimulationError):
            run_distributed_matching(
                market,
                policy=default_policy(),
                network=LossyNetwork(0.5),
                seed=4,
                max_slots=500,
            )

    def test_drop_counter_reports_losses(self):
        market = paper_simulation_market(10, 3, np.random.default_rng(300))
        try:
            run_distributed_matching(
                market,
                policy=default_policy(),
                network=LossyNetwork(0.5),
                seed=4,
                max_slots=500,
            )
        except SimulationError as error:
            # The failure message names the stuck agents for debugging.
            assert "busy agents" in str(error)


class TestDelayValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            DelayedNetwork(-1, 2)

    def test_inverted_window_rejected(self):
        with pytest.raises(SimulationError):
            DelayedNetwork(3, 1)

    def test_extreme_jitter_still_safe(self):
        """Large random jitter reorders messages across many slots; the
        matching must remain interference-free and two-sided consistent."""
        market = paper_simulation_market(8, 3, np.random.default_rng(301))
        result = run_distributed_matching(
            market,
            policy=default_policy(),
            network=DelayedNetwork(1, 6),
            seed=13,
            max_slots=20_000,
        )
        assert result.matching.is_interference_free(market.interference)
