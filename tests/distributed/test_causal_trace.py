"""Kernel-level causal message tracing.

These tests drive :class:`TimeSlottedSimulator` directly with tiny
purpose-built agents, pinning the contract the offline toolkit
(:mod:`repro.trace`) relies on:

* every send occurrence gets a fresh id, stamped with the parent the
  sender was reacting to and the root trace id;
* replies are parented to the delivered message being handled, while
  spontaneous sends (empty inbox) start new chains;
* drops are emitted with the reason the kernel saw;
* with a null recorder no tracker exists and ``ctx.send`` stays silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.distributed.messages import Message
from repro.distributed.network import LossyNetwork
from repro.distributed.simulator import Agent, TimeSlottedSimulator
from repro.obs import ListEventSink, Recorder


@dataclass(frozen=True)
class Ping(Message):
    n: int


@dataclass(frozen=True)
class Pong(Message):
    n: int


class Pinger(Agent):
    """Sends one Ping per slot until `count` is exhausted; records ids."""

    def __init__(self, target: str, count: int) -> None:
        super().__init__("pinger", priority=0)
        self.target = target
        self.remaining = count
        self.send_ids: List[Optional[int]] = []

    def step(self, inbox, ctx):
        for message in inbox:
            ctx.set_cause(message)
        if self.remaining > 0:
            self.send_ids.append(
                ctx.send(self.target, Ping(self.agent_id, self.remaining))
            )
            self.remaining -= 1

    def is_done(self):
        return self.remaining == 0

    def snapshot(self):
        return {"remaining": self.remaining}

    def restore(self, state):
        self.remaining = state["remaining"]


class Ponger(Agent):
    """Replies Pong to every Ping (a send caused by a delivery)."""

    def __init__(self) -> None:
        super().__init__("ponger", priority=1)

    def step(self, inbox, ctx):
        for message in inbox:
            ctx.set_cause(message)
            if isinstance(message, Ping):
                ctx.send(message.sender, Pong(self.agent_id, message.n))

    def is_done(self):
        return True

    def snapshot(self):
        return {}

    def restore(self, state):
        pass


def run_ping_pong(recorder=None, network=None, count=3, seed=0):
    pinger = Pinger("ponger", count)
    ponger = Ponger()
    sim = TimeSlottedSimulator(
        [pinger, ponger], network=network, seed=seed, recorder=recorder
    )
    sim.run(max_slots=10_000)
    return pinger


class TestCausalStamping:
    def test_ids_unique_and_monotonic_per_send(self):
        sink = ListEventSink()
        run_ping_pong(recorder=Recorder(events=sink))
        sent = sink.of_type("msg.sent")
        ids = [e["id"] for e in sent]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)
        assert len(sent) == 6  # 3 pings + 3 pongs

    def test_ping_pong_forms_one_chain_rooted_at_first_send(self):
        sink = ListEventSink()
        run_ping_pong(recorder=Recorder(events=sink))
        sent = sink.of_type("msg.sent")
        # The first ping is spontaneous (empty inbox): a chain root.
        assert sent[0]["parent"] is None
        assert sent[0]["trace"] == sent[0]["id"]
        # Every later send reacts to the message delivered just before it,
        # so the whole exchange is one alternating chain with one trace id.
        for previous, event in zip(sent, sent[1:]):
            assert event["parent"] == previous["id"]
        assert {e["trace"] for e in sent} == {sent[0]["id"]}

    def test_replies_parented_to_delivered_ping(self):
        sink = ListEventSink()
        run_ping_pong(recorder=Recorder(events=sink))
        sent = {e["id"]: e for e in sink.of_type("msg.sent")}
        pongs = [e for e in sent.values() if e["type"] == "Pong"]
        assert len(pongs) == 3
        for pong in pongs:
            parent = sent[pong["parent"]]
            assert parent["type"] == "Ping"
            assert parent["src"] == pong["dst"]
            # Reply inherits the root trace id of the chain.
            assert pong["trace"] == parent["trace"]

    def test_agent_sees_kernel_assigned_ids(self):
        sink = ListEventSink()
        pinger = run_ping_pong(recorder=Recorder(events=sink))
        pings = [e for e in sink.of_type("msg.sent") if e["type"] == "Ping"]
        assert pinger.send_ids == [e["id"] for e in pings]

    def test_delivery_events_match_sends(self):
        sink = ListEventSink()
        run_ping_pong(recorder=Recorder(events=sink))
        sent_ids = {e["id"] for e in sink.of_type("msg.sent")}
        delivered = sink.of_type("msg.delivered")
        assert {e["id"] for e in delivered} == sent_ids
        for event in delivered:
            assert event["dst"] in ("pinger", "ponger")


class TestDropAccounting:
    def test_network_drops_emitted_with_reason(self):
        sink = ListEventSink()
        run_ping_pong(
            recorder=Recorder(events=sink),
            network=LossyNetwork(0.5),
            count=20,
            seed=3,
        )
        dropped = sink.of_type("msg.dropped")
        assert dropped, "loss rate 0.5 over 20+ sends must drop something"
        assert all(e["reason"] == "network" for e in dropped)
        sent_ids = {e["id"] for e in sink.of_type("msg.sent")}
        delivered_ids = {e["id"] for e in sink.of_type("msg.delivered")}
        dropped_ids = {e["id"] for e in dropped}
        # Conservation: every send either delivered or dropped, never both.
        assert delivered_ids | dropped_ids == sent_ids
        assert delivered_ids & dropped_ids == set()


class TestNullRecorderPath:
    def test_no_tracker_allocated_without_event_sink(self):
        pinger = Pinger("ponger", 1)
        sim = TimeSlottedSimulator([pinger, Ponger()], seed=0)
        assert sim._causal is None

    def test_send_returns_none_and_behaviour_unchanged(self):
        silent = run_ping_pong(recorder=None)
        assert silent.send_ids == [None, None, None]
        sink = ListEventSink()
        traced = run_ping_pong(recorder=Recorder(events=sink))
        # Tracing changed nothing behavioural: same number of sends.
        assert len(traced.send_ids) == len(silent.send_ids)
