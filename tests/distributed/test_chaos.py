"""Chaos tests: node crashes, recoveries and partitions under load.

Kernel-level tests drive tiny snapshot-capable toy agents through crash /
restart / partition schedules; the end-to-end tests inject faults into the
full matching protocol (over a lossy network with the ARQ transport) and
check the acceptance contract: checkpoint-restarted populations
re-converge to an interference-free matching, and unrecoverable
partitions degrade to a safety-validated partial matching instead of
raising.

The ``SPECTRUM_CHAOS_SEED`` environment variable offsets every seed used
here; CI runs the file across several values so fault-injection
nondeterminism regressions surface on PRs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.distributed.faults import (
    CrashFault,
    FaultSchedule,
    MessageFault,
    PartitionFault,
    PartitionedNetwork,
    RestartMode,
)
from repro.distributed.messages import Message
from repro.distributed.network import DelayedNetwork, LossyNetwork
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.simulator import Agent, TimeSlottedSimulator
from repro.distributed.transition import default_policy
from repro.errors import SimulationError
from repro.obs import JsonlEventSink, MetricsRegistry, Recorder
from repro.workloads.scenarios import paper_simulation_market, toy_example_market

#: CI offsets this to run the whole file under several seed families.
BASE_SEED = int(os.environ.get("SPECTRUM_CHAOS_SEED", "0"))


# ----------------------------------------------------------------------
# Toy agents with checkpoint support
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Tick(Message):
    value: int


class Pinger(Agent):
    """Sends one Tick per slot to ``target`` until the budget runs out."""

    def __init__(self, agent_id: str, target: str, budget: int) -> None:
        super().__init__(agent_id, priority=0)
        self.target = target
        self.budget = budget

    def step(self, inbox, ctx):
        if self.budget > 0:
            ctx.send(self.target, Tick(self.agent_id, self.budget))
            self.budget -= 1

    def is_done(self):
        return self.budget == 0

    def snapshot(self):
        return {"budget": self.budget}

    def restore(self, state):
        self.budget = state["budget"]


class Collector(Agent):
    def __init__(self, agent_id: str = "collector") -> None:
        super().__init__(agent_id, priority=1)
        self.received: List[int] = []

    def step(self, inbox, ctx):
        for message in inbox:
            self.received.append(message.value)

    def is_done(self):
        return True

    def snapshot(self):
        return {"received": list(self.received)}

    def restore(self, state):
        self.received = list(state["received"])


class NoSnapshot(Agent):
    def step(self, inbox, ctx):
        pass

    def is_done(self):
        return True


# ----------------------------------------------------------------------
# Schedule validation
# ----------------------------------------------------------------------
class TestFaultScheduleValidation:
    def test_restart_must_follow_crash(self):
        with pytest.raises(SimulationError):
            CrashFault("a", crash_slot=5, restart_slot=5)

    def test_negative_crash_slot_rejected(self):
        with pytest.raises(SimulationError):
            CrashFault("a", crash_slot=-1)

    def test_overlapping_crash_windows_rejected(self):
        with pytest.raises(SimulationError):
            FaultSchedule(
                crashes=[
                    CrashFault("a", crash_slot=2, restart_slot=10),
                    CrashFault("a", crash_slot=6, restart_slot=12),
                ]
            )

    def test_crash_after_permanent_crash_rejected(self):
        with pytest.raises(SimulationError):
            FaultSchedule(
                crashes=[
                    CrashFault("a", crash_slot=2),
                    CrashFault("a", crash_slot=9, restart_slot=12),
                ]
            )

    def test_sequential_crash_windows_allowed(self):
        schedule = FaultSchedule(
            crashes=[
                CrashFault("a", crash_slot=2, restart_slot=5),
                CrashFault("a", crash_slot=5, restart_slot=9),
            ]
        )
        assert schedule.last_node_event_slot == 9

    def test_partition_overlapping_groups_rejected(self):
        with pytest.raises(SimulationError):
            PartitionFault(
                groups=(frozenset({"a", "b"}), frozenset({"b"})), start_slot=0
            )

    def test_partition_window_rejected(self):
        with pytest.raises(SimulationError):
            PartitionFault(groups=(frozenset({"a"}),), start_slot=4, end_slot=4)

    def test_message_fault_validation(self):
        with pytest.raises(SimulationError):
            MessageFault(message_types=("Tick",), action="mangle")
        with pytest.raises(SimulationError):
            MessageFault(message_types=("Tick",), action="delay", delay=0)
        with pytest.raises(SimulationError):
            MessageFault(message_types=())

    def test_unknown_agent_rejected_at_simulator(self):
        schedule = FaultSchedule(crashes=[CrashFault("ghost", crash_slot=1)])
        with pytest.raises(SimulationError):
            TimeSlottedSimulator([Collector()], fault_schedule=schedule)

    def test_empty_schedule_is_empty(self):
        assert FaultSchedule().empty
        assert not FaultSchedule(
            crashes=[CrashFault("a", crash_slot=0)]
        ).empty


# ----------------------------------------------------------------------
# Kernel crash semantics
# ----------------------------------------------------------------------
class TestKernelCrashSemantics:
    def test_messages_to_crashed_agent_are_lost_and_counted(self):
        pinger = Pinger("pinger", "collector", budget=8)
        collector = Collector()
        schedule = FaultSchedule(
            crashes=[CrashFault("collector", crash_slot=2, restart_slot=5)]
        )
        sim = TimeSlottedSimulator(
            [pinger, collector], fault_schedule=schedule
        )
        sim.run()
        # Ticks sent in slots 2-4 (values 6, 5, 4) hit a dead host.
        assert collector.received == [8, 7, 3, 2, 1]
        assert sim.messages_lost_to_crash == 3
        assert sim.messages_dropped == 0
        assert sim.crashes == 1
        assert sim.restarts == 1
        assert sim.recovery_slots == (3,)

    def test_crashed_agent_is_not_stepped(self):
        pinger = Pinger("pinger", "collector", budget=6)
        collector = Collector()
        schedule = FaultSchedule(
            crashes=[CrashFault("pinger", crash_slot=2, restart_slot=4)]
        )
        sim = TimeSlottedSimulator([pinger, collector], fault_schedule=schedule)
        sim.run()
        # Checkpoint restart: the budget countdown resumes where it stopped.
        assert collector.received == [6, 5, 4, 3, 2, 1]
        assert sim.messages_lost_to_crash == 0

    def test_amnesiac_restart_forgets_progress(self):
        pinger = Pinger("pinger", "collector", budget=3)
        collector = Collector()
        schedule = FaultSchedule(
            crashes=[
                CrashFault(
                    "pinger",
                    crash_slot=2,
                    restart_slot=4,
                    mode=RestartMode.AMNESIA,
                )
            ]
        )
        sim = TimeSlottedSimulator([pinger, collector], fault_schedule=schedule)
        sim.run()
        # Two ticks pre-crash, then the full pristine budget again.
        assert collector.received == [3, 2, 3, 2, 1]

    def test_in_flight_messages_purged_at_crash(self):
        pinger = Pinger("pinger", "collector", budget=2)
        collector = Collector()
        schedule = FaultSchedule(crashes=[CrashFault("collector", crash_slot=2)])
        sim = TimeSlottedSimulator(
            [pinger, collector],
            network=DelayedNetwork(3, 3),
            fault_schedule=schedule,
        )
        sim.run()
        # Both ticks were still in flight (delivery slots 3 and 4) when the
        # collector died at slot 2: purged from the queue, not delivered.
        assert collector.received == []
        assert sim.messages_lost_to_crash == 2
        assert sim.messages_delivered == 0

    def test_permanent_crash_does_not_block_quiescence(self):
        pinger = Pinger("pinger", "collector", budget=5)
        collector = Collector()
        schedule = FaultSchedule(crashes=[CrashFault("pinger", crash_slot=2)])
        sim = TimeSlottedSimulator([pinger, collector], fault_schedule=schedule)
        sim.run(max_slots=50)  # would raise if the dead pinger blocked it
        assert not pinger.is_done()  # still had budget when it died
        assert sim.crashed_agents == ("pinger",)
        assert collector.received == [5, 4]

    def test_pending_restart_blocks_quiescence(self):
        # Everyone is idle long before slot 20, but the restart at 20 must
        # still fire (the pinger has budget left to spend afterwards).
        pinger = Pinger("pinger", "collector", budget=4)
        collector = Collector()
        schedule = FaultSchedule(
            crashes=[CrashFault("pinger", crash_slot=2, restart_slot=20)]
        )
        sim = TimeSlottedSimulator([pinger, collector], fault_schedule=schedule)
        slots = sim.run()
        assert slots >= 22
        assert collector.received == [4, 3, 2, 1]

    def test_snapshotless_agent_cannot_restart(self):
        schedule = FaultSchedule(
            crashes=[CrashFault("x", crash_slot=1, restart_slot=3)]
        )
        sim = TimeSlottedSimulator([NoSnapshot("x")], fault_schedule=schedule)
        with pytest.raises(SimulationError):
            sim.run(max_slots=10)

    def test_timeout_stop_mode_marks_timed_out(self):
        class Restless(Agent):
            def step(self, inbox, ctx):
                pass

            def is_done(self):
                return False

        sim = TimeSlottedSimulator([Restless("r")])
        slots = sim.run(max_slots=7, on_timeout="stop")
        assert slots == 7
        assert sim.timed_out

    def test_invalid_on_timeout_rejected(self):
        sim = TimeSlottedSimulator([Collector()])
        with pytest.raises(SimulationError):
            sim.run(on_timeout="shrug")


# ----------------------------------------------------------------------
# Partitions and targeted message faults
# ----------------------------------------------------------------------
class TestPartitionedNetwork:
    def run_partitioned(self, schedule, budget=6):
        pinger = Pinger("pinger", "collector", budget=budget)
        collector = Collector()
        sim = TimeSlottedSimulator(
            [pinger, collector], fault_schedule=schedule
        )
        sim.run(max_slots=100)
        return sim, collector

    def test_cross_group_messages_dropped_during_window(self):
        schedule = FaultSchedule(
            partitions=[
                PartitionFault(
                    groups=(frozenset({"pinger"}), frozenset({"collector"})),
                    start_slot=2,
                    end_slot=4,
                )
            ]
        )
        sim, collector = self.run_partitioned(schedule)
        assert collector.received == [6, 5, 2, 1]  # slots 2-3 lost
        assert isinstance(sim.network, PartitionedNetwork)
        assert sim.network.partition_drops == 2
        assert sim.messages_dropped == 2

    def test_implicit_remainder_group(self):
        # Only the pinger is named; the collector lands in the implicit
        # remainder group, so the two are separated all the same.
        schedule = FaultSchedule(
            partitions=[
                PartitionFault(
                    groups=(frozenset({"pinger"}),), start_slot=0, end_slot=2
                )
            ]
        )
        _, collector = self.run_partitioned(schedule, budget=4)
        assert collector.received == [2, 1]

    def test_same_group_messages_flow(self):
        schedule = FaultSchedule(
            partitions=[
                PartitionFault(
                    groups=(frozenset({"pinger", "collector"}),),
                    start_slot=0,
                    end_slot=50,
                )
            ]
        )
        sim, collector = self.run_partitioned(schedule, budget=4)
        assert collector.received == [4, 3, 2, 1]
        assert sim.network.partition_drops == 0

    def test_targeted_drop_by_message_type(self):
        schedule = FaultSchedule(
            message_faults=[
                MessageFault(
                    message_types=("Tick",), start_slot=1, end_slot=3
                )
            ]
        )
        sim, collector = self.run_partitioned(schedule, budget=5)
        assert collector.received == [5, 2, 1]  # slots 1-2 filtered
        assert sim.network.targeted_drops == 2

    def test_targeted_delay_defers_delivery(self):
        schedule = FaultSchedule(
            message_faults=[
                MessageFault(
                    message_types=("Tick",),
                    start_slot=0,
                    end_slot=2,
                    action="delay",
                    delay=5,
                )
            ]
        )
        sim, collector = self.run_partitioned(schedule, budget=3)
        # Delayed ticks (slots 0-1) arrive after the on-time one (slot 2).
        assert collector.received == [1, 3, 2]
        assert sim.messages_dropped == 0

    def test_route_without_endpoints_rejected(self):
        network = PartitionedNetwork(FaultSchedule())
        with pytest.raises(SimulationError):
            network.route(0, np.random.default_rng(0))


# ----------------------------------------------------------------------
# End to end: the matching protocol under chaos
# ----------------------------------------------------------------------
def crash_schedule():
    """The acceptance scenario: >=2 buyers and >=1 seller crash mid-run
    (during Stage I; the default rule transitions at slot MN=30) and
    restart from checkpoints well before the transition deadline."""
    return FaultSchedule(
        crashes=[
            CrashFault("buyer:0", crash_slot=5, restart_slot=12),
            CrashFault("buyer:3", crash_slot=6, restart_slot=14),
            CrashFault("seller:1", crash_slot=7, restart_slot=15),
        ]
    )


class TestChaosEndToEnd:
    @pytest.mark.parametrize("trial", range(3))
    def test_crash_recovery_reconverges(self, trial):
        seed = BASE_SEED * 10 + trial
        market = paper_simulation_market(
            10, 3, np.random.default_rng([77, seed])
        )
        reference = run_distributed_matching(market, policy=default_policy())
        chaotic = run_distributed_matching(
            market,
            policy=default_policy(),
            network=LossyNetwork(0.2),
            seed=seed,
            reliable_transport=True,
            fault_schedule=crash_schedule(),
            max_slots=100_000,
        )
        assert chaotic.status == "converged"
        assert chaotic.matching.is_interference_free(market.interference)
        assert chaotic.crashes == 3
        assert chaotic.restarts == 3
        assert len(chaotic.recovery_slots) == 3
        assert chaotic.messages_lost_to_crash > 0
        # Checkpoint restart + ARQ retransmission recover every lost
        # handshake before the deadline, so the run re-converges fully.
        # Crash timing can still shift which proposal a seller sees first
        # and select a *different* (occasionally even better) Nash
        # outcome, so assert the contract, not byte equality: same number
        # of buyers served at near-identical welfare.
        assert (
            chaotic.matching.num_matched()
            == reference.matching.num_matched()
        )
        assert chaotic.social_welfare >= 0.9 * reference.social_welfare
        assert chaotic.view_divergences == 0

    # The partition-branch tests pin their market: whether a buyer/seller
    # split even matters depends on the market (a market where every buyer
    # lands her top channel before the split legitimately converges), and
    # these tests assert the timeout *branch*, which needs a known-stuck
    # instance.  Fault-timing nondeterminism is covered by the seed-varied
    # crash tests above.
    def test_unrecoverable_partition_degrades(self):
        market = paper_simulation_market(
            10, 3, np.random.default_rng([78, 0])
        )
        schedule = FaultSchedule(
            partitions=[
                PartitionFault(
                    groups=(
                        frozenset(f"buyer:{j}" for j in range(10)),
                        frozenset(f"seller:{i}" for i in range(3)),
                    ),
                    start_slot=4,  # never heals
                )
            ]
        )
        result = run_distributed_matching(
            market,
            policy=default_policy(),
            fault_schedule=schedule,
            deadline_slots=150,
            on_timeout="degrade",
        )
        assert result.status == "degraded"
        assert result.slots == 150
        assert result.matching.is_interference_free(market.interference)
        assert result.partition_drops > 0
        # Slots 0-3 completed at least one full propose/accept round.
        assert result.matching.num_matched() > 0

    def test_unrecoverable_partition_raises_without_degrade(self):
        market = paper_simulation_market(
            10, 3, np.random.default_rng([78, 0])
        )
        schedule = FaultSchedule(
            partitions=[
                PartitionFault(
                    groups=(
                        frozenset(f"buyer:{j}" for j in range(10)),
                        frozenset(f"seller:{i}" for i in range(3)),
                    ),
                    start_slot=4,
                )
            ]
        )
        with pytest.raises(SimulationError):
            run_distributed_matching(
                market,
                policy=default_policy(),
                fault_schedule=schedule,
                deadline_slots=150,
            )

    def test_invalid_on_timeout_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            run_distributed_matching(
                toy_example_market(), on_timeout="explode"
            )

    def test_amnesiac_buyer_reenters_via_invitation_path(self):
        """An amnesiac buyer forgets her match; she re-proposes from
        scratch, gets rejected by transitioned sellers, exhausts Stage I
        and re-enters through transfer applications / invitations."""
        market = toy_example_market()
        schedule = FaultSchedule(
            crashes=[
                CrashFault(
                    "buyer:1",
                    crash_slot=3,
                    restart_slot=20,  # past the MN=15 transition deadline
                    mode=RestartMode.AMNESIA,
                )
            ]
        )
        result = run_distributed_matching(
            market,
            policy=default_policy(),
            fault_schedule=schedule,
            max_slots=10_000,
        )
        assert result.status == "converged"
        assert result.matching.is_interference_free(market.interference)
        assert result.crashes == 1 and result.restarts == 1

    def test_total_blackout_window_then_recovery(self):
        """A loss_rate=1.0 window expressed as a targeted DataFrame/Ack
        blackout: ARQ rides it out and the matching still converges."""
        market = toy_example_market()
        schedule = FaultSchedule(
            message_faults=[
                MessageFault(
                    message_types=("DataFrame", "AckFrame"),
                    start_slot=4,
                    end_slot=10,
                )
            ]
        )
        reference = run_distributed_matching(market, policy=default_policy())
        result = run_distributed_matching(
            market,
            policy=default_policy(),
            reliable_transport=True,
            fault_schedule=schedule,
            max_slots=50_000,
        )
        assert result.status == "converged"
        assert result.matching == reference.matching
        assert result.partition_drops > 0


# ----------------------------------------------------------------------
# Observability of fault paths
# ----------------------------------------------------------------------
class TestFaultObservability:
    def test_fault_events_and_recovery_histogram_in_trace(self, tmp_path):
        trace = tmp_path / "chaos.jsonl"
        market = paper_simulation_market(
            8, 3, np.random.default_rng([79, BASE_SEED])
        )
        schedule = FaultSchedule(
            crashes=[CrashFault("buyer:2", crash_slot=3, restart_slot=9)],
            partitions=[
                PartitionFault(
                    groups=(frozenset({"buyer:0"}),), start_slot=2, end_slot=6
                )
            ],
        )
        recorder = Recorder(
            events=JsonlEventSink(str(trace)), metrics=MetricsRegistry()
        )
        with recorder:
            run_distributed_matching(
                market,
                policy=default_policy(),
                network=LossyNetwork(0.1),
                seed=BASE_SEED,
                reliable_transport=True,
                fault_schedule=schedule,
                recorder=recorder,
                max_slots=100_000,
            )
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        by_type = {}
        for event in events:
            by_type.setdefault(event["event"], []).append(event)
        assert by_type["sim.crash"][0]["agent"] == "buyer:2"
        restart = by_type["sim.restart"][0]
        assert restart["agent"] == "buyer:2" and restart["down_slots"] == 6
        assert by_type["sim.partition"][0]["groups"] == [["buyer:0"]]
        assert "sim.partition_healed" in by_type
        summary = by_type["sim.fault_summary"][0]
        assert summary["crashes"] == 1 and summary["restarts"] == 1
        assert summary["recovery_slots"] == [6]
        run_end = by_type["distributed.run_end"][0]
        assert run_end["status"] == "converged"
        # The recovery-time histogram lives in the metrics registry too.
        snapshot = recorder.metrics.snapshot()
        histogram = snapshot["histograms"]["sim.recovery_slots"]
        assert histogram["count"] == 1

    def test_disabled_recorder_fault_free_parity(self):
        """Fault-free runs stay byte-identical to the pre-chaos kernel:
        no schedule, no recorder, same matching / slots / traffic as a
        fully observed run, and zeroed fault accounting."""
        market = paper_simulation_market(
            8, 3, np.random.default_rng([80, BASE_SEED])
        )
        bare = run_distributed_matching(market, policy=default_policy())
        observed_recorder = Recorder(metrics=MetricsRegistry())
        observed = run_distributed_matching(
            market, policy=default_policy(), recorder=observed_recorder
        )
        empty_schedule = run_distributed_matching(
            market, policy=default_policy(), fault_schedule=FaultSchedule()
        )
        for other in (observed, empty_schedule):
            assert other.matching == bare.matching
            assert other.slots == bare.slots
            assert other.messages_sent == bare.messages_sent
            assert other.messages_delivered == bare.messages_delivered
        assert bare.status == "converged"
        assert bare.crashes == 0 and bare.restarts == 0
        assert bare.messages_lost_to_crash == 0
        assert bare.partition_drops == 0
        assert bare.view_divergences == 0
