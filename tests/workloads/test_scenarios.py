"""Tests for the named scenario builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interference.mwis import MwisAlgorithm
from repro.workloads.scenarios import (
    counterexample_market,
    paper_simulation_market,
    physical_market_example,
    sparse_simulation_market,
    toy_example_market,
)


class TestToyExampleScenario:
    def test_dimensions_and_names(self):
        market = toy_example_market()
        assert market.num_buyers == 5
        assert market.num_channels == 3
        assert market.channel_names == ("a", "b", "c")
        assert market.buyer_names[0] == "buyer1"

    def test_utilities_match_fig3b(self):
        market = toy_example_market()
        assert list(market.buyer_vector(2)) == [9.0, 10.0, 8.0]
        assert list(market.buyer_vector(4)) == [1.0, 2.0, 3.0]

    def test_interference_matches_fig3a(self):
        market = toy_example_market()
        # channel a: 1-2 and 1-4 interfere (0-indexed: 0-1, 0-3)
        assert market.interference.interferes(0, 0, 1)
        assert market.interference.interferes(0, 0, 3)
        assert not market.interference.interferes(0, 1, 3)
        # channel c: only 2-5 (ids 1-4)
        assert market.interference.interferes(2, 1, 4)
        assert not market.interference.interferes(2, 0, 1)

    def test_algorithm_override(self):
        market = toy_example_market(mwis_algorithm=MwisAlgorithm.EXACT)
        assert market.mwis_algorithm is MwisAlgorithm.EXACT


class TestCounterexampleScenario:
    def test_dimensions(self):
        market = counterexample_market()
        assert market.num_buyers == 5
        assert market.num_channels == 3
        assert market.buyer_names == ("z", "w", "x", "y", "j")


class TestPaperSimulationMarket:
    def test_dimensions(self):
        market = paper_simulation_market(25, 6, np.random.default_rng(0))
        assert market.num_buyers == 25
        assert market.num_channels == 6

    def test_determinism(self):
        a = paper_simulation_market(10, 3, np.random.default_rng(4))
        b = paper_simulation_market(10, 3, np.random.default_rng(4))
        assert np.array_equal(a.utilities, b.utilities)
        assert all(a.graph(i) == b.graph(i) for i in range(3))

    def test_utilities_in_unit_interval(self):
        market = paper_simulation_market(30, 5, np.random.default_rng(1))
        assert np.all((market.utilities >= 0.0) & (market.utilities < 1.0))

    def test_permutation_level_flows_through(self):
        from repro.workloads.similarity import average_pairwise_srcc

        similar = paper_simulation_market(
            40, 6, np.random.default_rng(2), permutation_level=0
        )
        assert average_pairwise_srcc(similar.utilities) == pytest.approx(1.0)

    def test_custom_geometry(self):
        # A tiny area with max range forces near-complete interference.
        market = paper_simulation_market(
            10,
            2,
            np.random.default_rng(3),
            area_side=0.01,
            max_range=5.0,
        )
        graph = market.graph(0)
        assert graph.num_edges == 45


class TestPhysicalExample:
    def test_expansion_shape(self, rng):
        market = physical_market_example(rng)
        assert market.num_channels == 3
        assert market.num_buyers == 5

    def test_validates_clone_cliques(self, rng):
        market = physical_market_example(rng)
        market.validate()  # must not raise
        # clones of isp0 are virtual buyers 0 and 1
        for channel in range(market.num_channels):
            assert market.interference.interferes(channel, 0, 1)


class TestSparseSimulationMarket:
    def test_constant_density_caps_degree(self):
        # Doubling N doubles the area, so the average interference
        # degree stays bounded by density * pi * max_range^2 instead of
        # growing with N.
        degrees = []
        for num_buyers in (400, 800):
            market = sparse_simulation_market(
                num_buyers, 3, np.random.default_rng([5, num_buyers])
            )
            total = sum(
                market.graph(c).num_edges for c in range(market.num_channels)
            )
            degrees.append(2.0 * total / (num_buyers * market.num_channels))
        cap = 5.0 * np.pi * 1.0**2  # density * pi * max_range^2
        assert all(avg <= 2.0 * cap for avg in degrees)

    def test_market_is_well_formed(self):
        market = sparse_simulation_market(
            60, 4, np.random.default_rng(3), mwis_algorithm=MwisAlgorithm.GWMIN2
        )
        assert market.num_buyers == 60
        assert market.num_channels == 4
        assert market.mwis_algorithm is MwisAlgorithm.GWMIN2
        assert np.all(market.utilities >= 0.0)

    def test_deterministic_for_a_seed(self):
        a = sparse_simulation_market(50, 3, np.random.default_rng([7, 50]))
        b = sparse_simulation_market(50, 3, np.random.default_rng([7, 50]))
        np.testing.assert_array_equal(a.utilities, b.utilities)
        for channel in range(3):
            assert a.graph(channel).num_edges == b.graph(channel).num_edges
