"""Tests for geometric deployments (paper Section V-A distributions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MarketConfigurationError
from repro.workloads.deployment import (
    Deployment,
    random_deployment,
    random_transmission_ranges,
)


class TestRandomDeployment:
    def test_shapes_and_bounds(self, rng):
        deployment = random_deployment(50, 4, rng)
        assert deployment.locations.shape == (50, 2)
        assert np.all(deployment.locations >= 0.0)
        assert np.all(deployment.locations <= 10.0)
        assert len(deployment.transmission_ranges) == 4

    def test_ranges_in_half_open_interval(self, rng):
        ranges = random_transmission_ranges(1000, rng)
        assert all(0.0 < r <= 5.0 for r in ranges)

    def test_custom_geometry(self, rng):
        deployment = random_deployment(10, 2, rng, area_side=3.0, max_range=1.0)
        assert np.all(deployment.locations <= 3.0)
        assert all(r <= 1.0 for r in deployment.transmission_ranges)
        assert deployment.area_side == 3.0

    def test_determinism(self):
        a = random_deployment(20, 3, np.random.default_rng(5))
        b = random_deployment(20, 3, np.random.default_rng(5))
        assert np.array_equal(a.locations, b.locations)
        assert a.transmission_ranges == b.transmission_ranges

    def test_validation(self, rng):
        with pytest.raises(MarketConfigurationError):
            random_deployment(0, 3, rng)
        with pytest.raises(MarketConfigurationError):
            random_deployment(5, 0, rng)
        with pytest.raises(MarketConfigurationError):
            random_deployment(5, 3, rng, area_side=-1.0)
        with pytest.raises(MarketConfigurationError):
            random_transmission_ranges(0, rng)

    def test_interference_map_materialisation(self, rng):
        deployment = random_deployment(30, 3, rng)
        imap = deployment.interference_map()
        assert imap.num_buyers == 30
        assert imap.num_channels == 3

    def test_tight_cluster_fully_interferes(self):
        deployment = Deployment(
            locations=np.zeros((5, 2)),
            transmission_ranges=(1.0,),
            area_side=10.0,
        )
        graph = deployment.interference_map()[0]
        assert graph.num_edges == 10  # complete graph on 5 coincident nodes


class TestClusteredDeployment:
    def test_shapes_and_bounds(self, rng):
        from repro.workloads.deployment import clustered_deployment

        deployment = clustered_deployment(40, 3, rng, num_clusters=4)
        assert deployment.locations.shape == (40, 2)
        assert np.all(deployment.locations >= 0.0)
        assert np.all(deployment.locations <= 10.0)

    def test_tighter_clusters_are_denser(self):
        from repro.workloads.deployment import clustered_deployment

        def mean_density(spread, seed=3):
            deployment = clustered_deployment(
                50, 3, np.random.default_rng(seed), num_clusters=3,
                cluster_spread=spread,
            )
            imap = deployment.interference_map()
            return np.mean([imap.density(i) for i in range(3)])

        assert mean_density(0.3) > mean_density(3.0)

    def test_zero_spread_stacks_buyers_on_centres(self):
        from repro.workloads.deployment import clustered_deployment

        deployment = clustered_deployment(
            12, 2, np.random.default_rng(0), num_clusters=2, cluster_spread=0.0
        )
        unique_points = {tuple(p) for p in np.round(deployment.locations, 9)}
        assert len(unique_points) <= 2

    def test_validation(self, rng):
        from repro.workloads.deployment import clustered_deployment

        with pytest.raises(MarketConfigurationError):
            clustered_deployment(10, 2, rng, num_clusters=0)
        with pytest.raises(MarketConfigurationError):
            clustered_deployment(10, 2, rng, cluster_spread=-1.0)
        with pytest.raises(MarketConfigurationError):
            clustered_deployment(0, 2, rng)

    def test_determinism(self):
        from repro.workloads.deployment import clustered_deployment

        a = clustered_deployment(20, 3, np.random.default_rng(5))
        b = clustered_deployment(20, 3, np.random.default_rng(5))
        assert np.array_equal(a.locations, b.locations)
