"""Tests for the SRCC machinery."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.errors import MarketConfigurationError
from repro.workloads.similarity import average_pairwise_srcc, spearman_rank_correlation


class TestPairwiseSrcc:
    def test_identical_rankings(self):
        assert spearman_rank_correlation(
            np.array([1.0, 2.0, 3.0]), np.array([10.0, 20.0, 30.0])
        ) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        assert spearman_rank_correlation(
            np.array([1.0, 2.0, 3.0]), np.array([9.0, 5.0, 1.0])
        ) == pytest.approx(-1.0)

    def test_matches_scipy(self, rng):
        x = rng.random(20)
        y = rng.random(20)
        ours = spearman_rank_correlation(x, y)
        theirs = spearmanr(x, y).statistic
        assert ours == pytest.approx(float(theirs))

    def test_ties_use_average_ranks(self):
        x = np.array([1.0, 1.0, 2.0])
        y = np.array([3.0, 5.0, 7.0])
        expected = float(spearmanr(x, y).statistic)
        assert spearman_rank_correlation(x, y) == pytest.approx(expected)

    def test_constant_vector_rejected(self):
        with pytest.raises(MarketConfigurationError):
            spearman_rank_correlation(np.ones(4), np.arange(4.0))

    def test_shape_validation(self):
        with pytest.raises(MarketConfigurationError):
            spearman_rank_correlation(np.ones(3), np.ones(4))
        with pytest.raises(MarketConfigurationError):
            spearman_rank_correlation(np.array([1.0]), np.array([2.0]))


class TestAveragePairwise:
    def test_two_identical_buyers(self):
        u = np.array([[0.1, 0.5, 0.9], [0.2, 0.6, 0.8]])
        assert average_pairwise_srcc(u) == pytest.approx(1.0)

    def test_mixed_population(self):
        # Buyers 0,1 agree; buyer 2 is exactly reversed: mean of
        # (1, -1, -1) = -1/3.
        u = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [9.0, 8.0, 7.0]])
        assert average_pairwise_srcc(u) == pytest.approx(-1.0 / 3.0)

    def test_matches_naive_loop(self, rng):
        u = rng.random((12, 6))
        naive = np.mean(
            [
                spearman_rank_correlation(u[a], u[b])
                for a in range(12)
                for b in range(a + 1, 12)
            ]
        )
        assert average_pairwise_srcc(u) == pytest.approx(float(naive))

    def test_validation(self):
        with pytest.raises(MarketConfigurationError):
            average_pairwise_srcc(np.ones((1, 5)))
        with pytest.raises(MarketConfigurationError):
            average_pairwise_srcc(np.random.rand(5))
        with pytest.raises(MarketConfigurationError):
            average_pairwise_srcc(np.ones((3, 3)))  # constant rows
