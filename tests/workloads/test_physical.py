"""Tests for the physical-market generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import demand_satisfaction
from repro.core.stability import is_nash_stable
from repro.core.two_stage import run_two_stage
from repro.errors import MarketConfigurationError
from repro.workloads.physical import random_physical_market


class TestGenerator:
    def test_dimensions_are_sums_of_physical_sizes(self):
        rng = np.random.default_rng(0)
        market = random_physical_market(3, 4, rng)
        # M = sum m_i in [3, 9]; N = sum n_j in [4, 12].
        assert 3 <= market.num_channels <= 9
        assert 4 <= market.num_buyers <= 12
        assert len(set(market.channel_owner)) == 3
        assert len(set(market.buyer_owner)) == 4

    def test_clone_cliques_validated(self):
        market = random_physical_market(2, 3, np.random.default_rng(1))
        market.validate()  # must not raise

    def test_clones_share_site_hence_interfere_geometrically(self):
        market = random_physical_market(
            2, 3, np.random.default_rng(2), max_demand=3
        )
        # Any two clones of the same owner interfere on EVERY channel
        # (coincident sites within any positive range + expansion clique).
        owners = market.buyer_owner
        for a in range(market.num_buyers):
            for b in range(a + 1, market.num_buyers):
                if owners[a] == owners[b]:
                    for channel in range(market.num_channels):
                        assert market.interference.interferes(channel, a, b)

    def test_determinism(self):
        a = random_physical_market(3, 5, np.random.default_rng(7))
        b = random_physical_market(3, 5, np.random.default_rng(7))
        assert np.array_equal(a.utilities, b.utilities)
        assert a.buyer_owner == b.buyer_owner

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MarketConfigurationError):
            random_physical_market(0, 3, rng)
        with pytest.raises(MarketConfigurationError):
            random_physical_market(2, 3, rng, max_demand=0)

    def test_end_to_end_matching_is_stable(self):
        market = random_physical_market(3, 6, np.random.default_rng(9))
        result = run_two_stage(market, record_trace=False)
        assert result.matching.is_interference_free(market.interference)
        assert is_nash_stable(market, result.matching)


class TestDemandSatisfaction:
    def test_fractions_per_owner(self):
        market = random_physical_market(3, 5, np.random.default_rng(11))
        result = run_two_stage(market, record_trace=False)
        satisfaction = demand_satisfaction(market, result.matching)
        assert set(satisfaction) == set(market.buyer_owner)
        for fraction in satisfaction.values():
            assert 0.0 <= fraction <= 1.0
        # Aggregate consistency with the virtual matched count.
        demanded = {owner: 0 for owner in satisfaction}
        for owner in market.buyer_owner:
            demanded[owner] += 1
        total_granted = sum(
            satisfaction[owner] * demanded[owner] for owner in satisfaction
        )
        assert total_granted == pytest.approx(result.matching.num_matched())

    def test_empty_matching_gives_zero_everywhere(self):
        from repro.core.matching import Matching

        market = random_physical_market(2, 3, np.random.default_rng(12))
        empty = Matching(market.num_channels, market.num_buyers)
        satisfaction = demand_satisfaction(market, empty)
        assert all(value == 0.0 for value in satisfaction.values())
