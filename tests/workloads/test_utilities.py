"""Tests for utility generation and the similarity manoeuvre."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MarketConfigurationError
from repro.workloads.similarity import average_pairwise_srcc
from repro.workloads.utilities import (
    apply_m_permutation,
    iid_uniform_utilities,
    permutation_level_for_similarity,
    sorted_base_utilities,
    utilities_with_permutation_level,
)


class TestIidUtilities:
    def test_shape_and_range(self, rng):
        u = iid_uniform_utilities(20, 6, rng)
        assert u.shape == (20, 6)
        assert np.all((u >= 0.0) & (u < 1.0))

    def test_validation(self, rng):
        with pytest.raises(MarketConfigurationError):
            iid_uniform_utilities(0, 3, rng)

    def test_iid_srcc_near_zero(self):
        u = iid_uniform_utilities(80, 8, np.random.default_rng(1))
        assert abs(average_pairwise_srcc(u)) < 0.1


class TestSortedBase:
    def test_rows_are_sorted(self, rng):
        u = sorted_base_utilities(10, 5, rng)
        assert np.all(np.diff(u, axis=1) >= 0)

    def test_descending_option(self, rng):
        u = sorted_base_utilities(10, 5, rng, descending=True)
        assert np.all(np.diff(u, axis=1) <= 0)

    def test_srcc_is_one(self, rng):
        u = sorted_base_utilities(30, 6, rng)
        assert average_pairwise_srcc(u) == pytest.approx(1.0)


class TestMPermutation:
    def test_m0_and_m1_are_identity(self, rng):
        u = sorted_base_utilities(10, 5, rng)
        assert np.array_equal(apply_m_permutation(u, 0, rng), u)
        assert np.array_equal(apply_m_permutation(u, 1, rng), u)

    def test_preserves_multiset_per_row(self, rng):
        u = sorted_base_utilities(10, 6, rng)
        permuted = apply_m_permutation(u, 4, rng)
        for before, after in zip(u, permuted):
            assert sorted(before) == pytest.approx(sorted(after))

    def test_input_not_mutated(self, rng):
        u = sorted_base_utilities(10, 6, rng)
        original = u.copy()
        apply_m_permutation(u, 6, rng)
        assert np.array_equal(u, original)

    def test_validation(self, rng):
        u = sorted_base_utilities(4, 3, rng)
        with pytest.raises(MarketConfigurationError):
            apply_m_permutation(u, 4, rng)
        with pytest.raises(MarketConfigurationError):
            apply_m_permutation(u, -1, rng)
        with pytest.raises(MarketConfigurationError):
            apply_m_permutation(np.ones(3), 1, rng)


class TestSimilarityControl:
    def test_srcc_decreases_with_m(self):
        """The paper: 'As m increases, the average SRCC will decrease.'"""
        rng_seed = 7
        num_buyers, num_channels = 60, 8
        srccs = []
        for m in (0, 2, 4, 6, 8):
            u = utilities_with_permutation_level(
                num_buyers, num_channels, m, np.random.default_rng(rng_seed)
            )
            srccs.append(average_pairwise_srcc(u))
        assert srccs[0] == pytest.approx(1.0)
        assert srccs[-1] < 0.2  # m = M: approximately independent
        # Broadly decreasing (allow small sampling noise between steps).
        assert all(b < a + 0.1 for a, b in zip(srccs, srccs[1:]))

    def test_level_mapping_endpoints(self):
        assert permutation_level_for_similarity(1.0, 8) == 0
        assert permutation_level_for_similarity(0.0, 8) == 8

    def test_level_mapping_midpoint(self):
        assert permutation_level_for_similarity(0.5, 8) == 4

    def test_level_mapping_validation(self):
        with pytest.raises(MarketConfigurationError):
            permutation_level_for_similarity(1.5, 8)
