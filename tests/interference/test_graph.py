"""Unit tests for InterferenceGraph and InterferenceMap."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import MarketConfigurationError
from repro.interference.graph import InterferenceGraph, InterferenceMap


class TestInterferenceGraphConstruction:
    def test_empty_graph_has_no_edges(self):
        graph = InterferenceGraph(4)
        assert graph.num_buyers == 4
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_zero_buyers_allowed(self):
        graph = InterferenceGraph(0)
        assert graph.num_buyers == 0

    def test_negative_size_rejected(self):
        with pytest.raises(MarketConfigurationError):
            InterferenceGraph(-1)

    def test_duplicate_and_reversed_edges_merge(self):
        graph = InterferenceGraph(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(MarketConfigurationError):
            InterferenceGraph(3, [(1, 1)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(MarketConfigurationError):
            InterferenceGraph(3, [(0, 3)])
        with pytest.raises(MarketConfigurationError):
            InterferenceGraph(3, [(-1, 0)])

    def test_edges_are_sorted_tuples(self):
        graph = InterferenceGraph(4, [(3, 1), (2, 0)])
        assert sorted(graph.edges()) == [(0, 2), (1, 3)]


class TestInterferenceQueries:
    @pytest.fixture
    def path_graph(self):
        # 0 - 1 - 2 - 3
        return InterferenceGraph(4, [(0, 1), (1, 2), (2, 3)])

    def test_interferes_is_symmetric(self, path_graph):
        assert path_graph.interferes(0, 1)
        assert path_graph.interferes(1, 0)
        assert not path_graph.interferes(0, 2)

    def test_neighbors(self, path_graph):
        assert path_graph.neighbors(1) == frozenset({0, 2})
        assert path_graph.neighbors(0) == frozenset({1})

    def test_degree(self, path_graph):
        assert path_graph.degree(1) == 2
        assert path_graph.degree(3) == 1

    def test_query_out_of_range_raises(self, path_graph):
        with pytest.raises(MarketConfigurationError):
            path_graph.interferes(0, 9)
        with pytest.raises(MarketConfigurationError):
            path_graph.neighbors(-1)

    def test_is_independent_true_cases(self, path_graph):
        assert path_graph.is_independent([])
        assert path_graph.is_independent([0])
        assert path_graph.is_independent([0, 2])
        assert path_graph.is_independent([0, 3])
        assert path_graph.is_independent([1, 3])

    def test_is_independent_false_cases(self, path_graph):
        assert not path_graph.is_independent([0, 1])
        assert not path_graph.is_independent([0, 1, 3])

    def test_duplicate_member_is_not_independent(self, path_graph):
        # The same (virtual) buyer twice models one buyer holding the
        # channel twice, which the dummy expansion forbids.
        assert not path_graph.is_independent([0, 0])

    def test_conflicts_with_set(self, path_graph):
        assert path_graph.conflicts_with_set(1, {0, 3})
        assert not path_graph.conflicts_with_set(0, {2, 3})
        # A node never conflicts with itself in the anchor set.
        assert not path_graph.conflicts_with_set(2, {2})

    def test_compatible_filter(self, path_graph):
        compatible = path_graph.independent_subset_greedily_compatible(
            anchor=[1], candidates=[0, 2, 3]
        )
        assert compatible == [3]

    def test_compatible_filter_excludes_anchor_members(self, path_graph):
        compatible = path_graph.independent_subset_greedily_compatible(
            anchor=[0], candidates=[0, 2, 3]
        )
        assert compatible == [2, 3]


class TestNetworkxInterop:
    def test_round_trip(self):
        graph = InterferenceGraph(5, [(0, 4), (1, 2)])
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 5
        back = InterferenceGraph.from_networkx(nx_graph)
        assert back == graph

    def test_from_networkx_keeps_isolated_high_nodes(self):
        nx_graph = nx.Graph()
        nx_graph.add_node(7)
        graph = InterferenceGraph.from_networkx(nx_graph)
        assert graph.num_buyers == 8

    def test_from_networkx_rejects_non_int_nodes(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge("a", "b")
        with pytest.raises(MarketConfigurationError):
            InterferenceGraph.from_networkx(nx_graph)

    def test_equality_and_hash(self):
        a = InterferenceGraph(3, [(0, 1)])
        b = InterferenceGraph(3, [(1, 0)])
        c = InterferenceGraph(3, [(0, 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a graph"


class TestInterferenceMap:
    def test_requires_at_least_one_channel(self):
        with pytest.raises(MarketConfigurationError):
            InterferenceMap([])

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(MarketConfigurationError):
            InterferenceMap([InterferenceGraph(3), InterferenceGraph(4)])

    def test_indexing_and_iteration(self):
        graphs = [InterferenceGraph(3, [(0, 1)]), InterferenceGraph(3)]
        imap = InterferenceMap(graphs)
        assert imap.num_channels == 2
        assert imap.num_buyers == 3
        assert imap[0].num_edges == 1
        assert len(list(imap)) == 2
        assert len(imap) == 2

    def test_channel_out_of_range(self):
        imap = InterferenceMap([InterferenceGraph(3)])
        with pytest.raises(MarketConfigurationError):
            imap.graph(1)

    def test_interferes_and_independent_delegate(self):
        imap = InterferenceMap(
            [InterferenceGraph(3, [(0, 1)]), InterferenceGraph(3, [(1, 2)])]
        )
        assert imap.interferes(0, 0, 1)
        assert not imap.interferes(1, 0, 1)
        assert imap.is_independent(1, [0, 1])
        assert not imap.is_independent(0, [0, 1])

    def test_with_clique_adds_edges_on_all_channels(self):
        imap = InterferenceMap([InterferenceGraph(4), InterferenceGraph(4)])
        expanded = imap.with_clique([0, 2, 3])
        for channel in range(2):
            assert expanded.interferes(channel, 0, 2)
            assert expanded.interferes(channel, 0, 3)
            assert expanded.interferes(channel, 2, 3)
            assert not expanded.interferes(channel, 0, 1)
        # Original map is untouched (immutability).
        assert imap[0].num_edges == 0

    def test_density(self):
        imap = InterferenceMap([InterferenceGraph(4, [(0, 1), (2, 3)])])
        assert imap.density(0) == pytest.approx(2 / 6)

    def test_density_of_tiny_graph_is_zero(self):
        imap = InterferenceMap([InterferenceGraph(1)])
        assert imap.density(0) == 0.0
