"""Unit tests for the MWIS solvers (greedy variants + exact)."""

from __future__ import annotations

import pytest

from repro.errors import SolverError, SolverLimitExceeded
from repro.interference.generators import complete_graph, empty_graph, ring_graph
from repro.interference.graph import InterferenceGraph
from repro.interference.mwis import (
    MwisAlgorithm,
    gwmin_lower_bound,
    is_independent_set,
    mwis_exact,
    mwis_greedy_gwmax,
    mwis_greedy_gwmin,
    mwis_greedy_gwmin2,
    mwis_solve,
)

ALL_SOLVERS = [
    mwis_greedy_gwmin,
    mwis_greedy_gwmin2,
    mwis_greedy_gwmax,
    mwis_exact,
]


@pytest.fixture
def path4():
    # 0 - 1 - 2 - 3
    return InterferenceGraph(4, [(0, 1), (1, 2), (2, 3)])


class TestAllSolversBasics:
    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_empty_pool(self, solver, path4):
        assert solver(path4, {}, []) == []

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_singleton(self, solver, path4):
        assert solver(path4, {2: 1.0}, [2]) == [2]

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_no_edges_takes_everything(self, solver):
        graph = empty_graph(5)
        weights = {j: float(j + 1) for j in range(5)}
        assert solver(graph, weights, range(5)) == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_complete_graph_takes_heaviest(self, solver):
        graph = complete_graph(4)
        weights = {0: 1.0, 1: 5.0, 2: 3.0, 3: 2.0}
        assert solver(graph, weights, range(4)) == [1]

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_output_is_independent(self, solver, path4):
        weights = {0: 2.0, 1: 3.0, 2: 3.0, 3: 2.0}
        result = solver(path4, weights, range(4))
        assert is_independent_set(path4, result)

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_missing_weight_raises(self, solver, path4):
        with pytest.raises(SolverError):
            solver(path4, {0: 1.0}, [0, 1])

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_negative_weight_raises(self, solver, path4):
        with pytest.raises(SolverError):
            solver(path4, {0: -1.0}, [0])

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_respects_subset_restriction(self, solver, path4):
        weights = {j: 1.0 for j in range(4)}
        result = solver(path4, weights, [1, 2])
        assert set(result) <= {1, 2}
        assert len(result) == 1


class TestExactSolver:
    def test_path_optimum(self, path4):
        # Optimal on the path with these weights is {1, 3} = 7.
        weights = {0: 1.0, 1: 5.0, 2: 4.0, 3: 2.0}
        assert mwis_exact(path4, weights, range(4)) == [1, 3]

    def test_ring_optimum(self):
        graph = ring_graph(5)
        weights = {j: 1.0 for j in range(5)}
        result = mwis_exact(graph, weights, range(5))
        assert len(result) == 2  # max independent set of C5 has size 2
        assert is_independent_set(graph, result)

    def test_tie_break_is_lexicographic(self):
        graph = InterferenceGraph(3, [(0, 1)])
        weights = {0: 1.0, 1: 1.0, 2: 1.0}
        # {0, 2} and {1, 2} both weigh 2; lexicographically smaller wins.
        assert mwis_exact(graph, weights, range(3)) == [0, 2]

    def test_node_limit(self, path4):
        with pytest.raises(SolverLimitExceeded):
            mwis_exact(path4, {j: 1.0 for j in range(4)}, range(4), node_limit=3)

    def test_zero_weights_allowed(self, path4):
        result = mwis_exact(path4, {j: 0.0 for j in range(4)}, range(4))
        assert is_independent_set(path4, result)


class TestGreedyKnownBehaviours:
    def test_gwmin_prefers_high_ratio(self):
        # Star: hub weight 3 with 3 spokes of weight 2 each.
        graph = InterferenceGraph(4, [(0, 1), (0, 2), (0, 3)])
        weights = {0: 3.0, 1: 2.0, 2: 2.0, 3: 2.0}
        # hub ratio 3/4; spoke ratio 2/2=1 -> spokes win; total 6 (optimal).
        assert mwis_greedy_gwmin(graph, weights, range(4)) == [1, 2, 3]

    def test_gwmin_bound_holds_on_fixture(self):
        graph = ring_graph(6)
        weights = {j: float(j + 1) for j in range(6)}
        result = mwis_greedy_gwmin(graph, weights, range(6))
        achieved = sum(weights[j] for j in result)
        assert achieved >= gwmin_lower_bound(graph, weights, range(6)) - 1e-9

    def test_gwmin2_handles_zero_weight_neighbourhood(self):
        graph = InterferenceGraph(2, [(0, 1)])
        result = mwis_greedy_gwmin2(graph, {0: 0.0, 1: 0.0}, [0, 1])
        assert len(result) == 1

    def test_gwmax_removes_light_vertices_first(self):
        # Triangle with one heavy vertex: GWMAX must keep the heavy one.
        graph = complete_graph(3)
        weights = {0: 10.0, 1: 1.0, 2: 1.0}
        assert mwis_greedy_gwmax(graph, weights, range(3)) == [0]


class TestDispatch:
    def test_solve_accepts_enum_and_string(self, path4):
        weights = {j: 1.0 for j in range(4)}
        by_enum = mwis_solve(path4, weights, range(4), MwisAlgorithm.EXACT)
        by_string = mwis_solve(path4, weights, range(4), "exact")
        assert by_enum == by_string

    def test_solve_unknown_algorithm_raises(self, path4):
        with pytest.raises(ValueError):
            mwis_solve(path4, {0: 1.0}, [0], "nonsense")
