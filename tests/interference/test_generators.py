"""Tests for the synthetic interference-graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MarketConfigurationError
from repro.interference.generators import (
    complete_graph,
    empty_graph,
    interference_map_from_edge_lists,
    random_gnp_graph,
    ring_graph,
    star_graph,
)


class TestDegenerateFamilies:
    def test_empty_graph(self):
        graph = empty_graph(6)
        assert graph.num_edges == 0
        assert graph.is_independent(range(6))

    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10
        assert not graph.is_independent([0, 1])
        assert graph.is_independent([3])

    def test_complete_graph_of_one(self):
        assert complete_graph(1).num_edges == 0


class TestRandomGnp:
    def test_p_zero_is_empty(self, rng):
        assert random_gnp_graph(10, 0.0, rng).num_edges == 0

    def test_p_one_is_complete(self, rng):
        assert random_gnp_graph(10, 1.0, rng).num_edges == 45

    def test_edge_count_near_expectation(self):
        rng = np.random.default_rng(0)
        graph = random_gnp_graph(50, 0.3, rng)
        expected = 0.3 * 50 * 49 / 2
        assert abs(graph.num_edges - expected) < 0.25 * expected

    def test_determinism_with_same_seed(self):
        g1 = random_gnp_graph(12, 0.4, np.random.default_rng(7))
        g2 = random_gnp_graph(12, 0.4, np.random.default_rng(7))
        assert g1 == g2

    def test_bad_probability_rejected(self, rng):
        with pytest.raises(MarketConfigurationError):
            random_gnp_graph(5, 1.5, rng)


class TestStructuredFamilies:
    def test_ring(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(j) == 2 for j in range(5))
        assert graph.is_independent([0, 2])
        assert not graph.is_independent([0, 1])

    def test_ring_too_small(self):
        with pytest.raises(MarketConfigurationError):
            ring_graph(2)

    def test_star(self):
        graph = star_graph(6, center=2)
        assert graph.degree(2) == 5
        assert graph.is_independent([0, 1, 3, 4, 5])
        assert not graph.is_independent([2, 0])

    def test_star_center_out_of_range(self):
        with pytest.raises(MarketConfigurationError):
            star_graph(3, center=3)


class TestEdgeListMap:
    def test_builds_per_channel_graphs(self):
        imap = interference_map_from_edge_lists(3, [[(0, 1)], [], [(1, 2)]])
        assert imap.num_channels == 3
        assert imap.interferes(0, 0, 1)
        assert not imap.interferes(1, 0, 1)
        assert imap.interferes(2, 1, 2)

    def test_requires_channels(self):
        with pytest.raises(MarketConfigurationError):
            interference_map_from_edge_lists(3, [])
