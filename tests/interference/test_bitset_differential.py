"""Differential suite: bitset MWIS kernels vs the set-based references.

The fast kernels promise *identical* coalitions -- not merely coalitions
of equal weight -- for every input (see the equivalence contract in
:mod:`repro.interference.bitset`).  These tests enforce that promise on
hundreds of random graphs across three weight regimes (continuous,
small-integer with many ties, and all-zero), on full node sets and on
random sub-pools, with Hypothesis exploring further when it is
installed.
"""

from __future__ import annotations

import random

import pytest

from repro.interference.bitset import (
    FAST_KERNELS_ENV,
    bits_of,
    fast_kernels_enabled,
    induced_masks,
    mask_of,
    mwis_gwmin2_bits,
    mwis_gwmin_bits,
    popcount,
)
from repro.interference.graph import InterferenceGraph
from repro.interference.mwis import (
    _argmax_remaining,
    mwis_greedy_gwmin,
    mwis_greedy_gwmin2,
)

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is optional
    HAVE_HYPOTHESIS = False


# ----------------------------------------------------------------------
# Random instance generation (seeded, deterministic)
# ----------------------------------------------------------------------
def _random_instance(rng: random.Random):
    """One random (graph, weights, pool) triple.

    Cycles through the adversarial weight regimes: continuous weights
    (generic case), small integers (forces score *ties*, stressing the
    tie-break rule), and all-zero weights (stresses the GWMIN2 zero
    guard, where every score collapses to 0.0).
    """
    n = rng.randint(1, 24)
    density = rng.choice([0.0, 0.1, 0.3, 0.7, 1.0])
    edges = [
        (j, k)
        for j in range(n)
        for k in range(j + 1, n)
        if rng.random() < density
    ]
    graph = InterferenceGraph(n, edges)
    regime = rng.randrange(3)
    if regime == 0:
        weights = {j: rng.uniform(0.0, 10.0) for j in range(n)}
    elif regime == 1:
        weights = {j: float(rng.randint(0, 3)) for j in range(n)}
    else:
        weights = {j: 0.0 for j in range(n)}
    if rng.random() < 0.5:
        pool = sorted(rng.sample(range(n), rng.randint(1, n)))
    else:
        pool = list(range(n))
    return graph, weights, pool


def _both_paths(monkeypatch, solver, graph, weights, pool):
    """Run one public solver via the kernel and the reference path."""
    monkeypatch.delenv(FAST_KERNELS_ENV, raising=False)
    assert fast_kernels_enabled()
    fast = solver(graph, weights, pool)
    monkeypatch.setenv(FAST_KERNELS_ENV, "0")
    assert not fast_kernels_enabled()
    reference = solver(graph, weights, pool)
    monkeypatch.delenv(FAST_KERNELS_ENV, raising=False)
    return fast, reference


class TestDifferentialRandomGraphs:
    """Seeded-random sweep: 250 instances per algorithm, zero tolerance."""

    @pytest.mark.parametrize("solver", [mwis_greedy_gwmin, mwis_greedy_gwmin2])
    def test_identical_coalitions_on_random_graphs(self, monkeypatch, solver):
        rng = random.Random(20260806)
        for case in range(250):
            graph, weights, pool = _random_instance(rng)
            fast, reference = _both_paths(monkeypatch, solver, graph, weights, pool)
            assert fast == reference, (
                f"case {case}: {solver.__name__} diverged on "
                f"n={graph.num_buyers} pool={pool} weights={weights}"
            )

    @pytest.mark.parametrize(
        "kernel,solver",
        [(mwis_gwmin_bits, mwis_greedy_gwmin), (mwis_gwmin2_bits, mwis_greedy_gwmin2)],
    )
    def test_direct_kernel_matches_reference(self, monkeypatch, kernel, solver):
        """Call the kernels directly (as the Stage-I cache does)."""
        rng = random.Random(77)
        monkeypatch.setenv(FAST_KERNELS_ENV, "0")
        for _ in range(100):
            graph, weights, pool = _random_instance(rng)
            induced = induced_masks(graph.adjacency_bits, pool, mask_of(pool))
            float_weights = {j: float(weights[j]) for j in pool}
            assert kernel(float_weights, pool, induced) == solver(
                graph, weights, pool
            )


if HAVE_HYPOTHESIS:

    @st.composite
    def _instances(draw):
        n = draw(st.integers(min_value=1, max_value=16))
        edges = draw(
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ).filter(lambda e: e[0] != e[1]),
                max_size=n * 3,
            )
        )
        weights = {
            j: draw(
                st.one_of(
                    st.floats(0.0, 100.0, allow_nan=False),
                    st.integers(0, 4).map(float),
                )
            )
            for j in range(n)
        }
        pool = draw(
            st.lists(
                st.integers(0, n - 1), min_size=1, max_size=n, unique=True
            ).map(sorted)
        )
        return InterferenceGraph(n, edges), weights, pool

    class TestDifferentialHypothesis:
        # No monkeypatch here: hypothesis forbids function-scoped
        # fixtures under @given, so the env var is toggled manually.
        @settings(max_examples=200, deadline=None)
        @given(instance=_instances())
        @pytest.mark.parametrize(
            "solver", [mwis_greedy_gwmin, mwis_greedy_gwmin2]
        )
        def test_identical_coalitions(self, solver, instance):
            import os

            graph, weights, pool = instance
            previous = os.environ.pop(FAST_KERNELS_ENV, None)
            try:
                fast = solver(graph, weights, pool)
                os.environ[FAST_KERNELS_ENV] = "0"
                reference = solver(graph, weights, pool)
            finally:
                if previous is None:
                    os.environ.pop(FAST_KERNELS_ENV, None)
                else:
                    os.environ[FAST_KERNELS_ENV] = previous
            assert fast == reference


class TestTieBreak:
    """Satellite fix: ties must go to the smallest index on both paths."""

    def test_argmax_remaining_prefers_smallest_index(self):
        assert _argmax_remaining([3, 5, 9], {3: 1.0, 5: 1.0, 9: 1.0}.get) == 3
        assert _argmax_remaining([3, 5, 9], {3: 1.0, 5: 2.0, 9: 2.0}.get) == 5

    @pytest.mark.parametrize("solver", [mwis_greedy_gwmin, mwis_greedy_gwmin2])
    def test_equal_weight_path_graph(self, monkeypatch, solver):
        # Path 0-1-2-3 with equal weights: every node ties on score, so
        # the smallest index (0) goes first, eliminating 1; then 2,
        # eliminating 3.  Both paths must realise exactly {0, 2}.
        graph = InterferenceGraph(4, [(0, 1), (1, 2), (2, 3)])
        weights = {j: 2.5 for j in range(4)}
        pool = [0, 1, 2, 3]
        fast, reference = _both_paths(monkeypatch, solver, graph, weights, pool)
        assert fast == reference == [0, 2]

    @pytest.mark.parametrize("solver", [mwis_greedy_gwmin, mwis_greedy_gwmin2])
    def test_all_zero_weights_are_deterministic(self, monkeypatch, solver):
        graph = InterferenceGraph(5, [(0, 1), (1, 2), (3, 4)])
        weights = {j: 0.0 for j in range(5)}
        fast, reference = _both_paths(
            monkeypatch, solver, graph, weights, [0, 1, 2, 3, 4]
        )
        assert fast == reference


class TestBitsetPrimitives:
    def test_mask_bits_roundtrip(self):
        assert bits_of(mask_of([0, 3, 17])) == [0, 3, 17]
        assert mask_of([]) == 0 and bits_of(0) == []

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount((1 << 70) | 0b1011) == 4

    def test_induced_masks_restrict_to_pool(self):
        graph = InterferenceGraph(4, [(0, 1), (0, 2), (2, 3)])
        pool = [0, 2]
        induced = induced_masks(graph.adjacency_bits, pool, mask_of(pool))
        assert induced == {0: mask_of([2]), 2: mask_of([0])}
