"""Tests for the disk-model interference construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MarketConfigurationError
from repro.interference.geometric import (
    build_geometric_interference_map,
    disk_interference_graph,
    sparse_disk_interference_graph,
)


class TestDiskGraph:
    def test_pairs_within_range_interfere(self):
        locations = [(0.0, 0.0), (1.0, 0.0), (5.0, 0.0)]
        graph = disk_interference_graph(locations, transmission_range=1.5)
        assert graph.interferes(0, 1)
        assert not graph.interferes(0, 2)
        assert not graph.interferes(1, 2)

    def test_boundary_distance_is_inclusive(self):
        locations = [(0.0, 0.0), (2.0, 0.0)]
        graph = disk_interference_graph(locations, transmission_range=2.0)
        assert graph.interferes(0, 1)

    def test_diagonal_distance(self):
        locations = [(0.0, 0.0), (3.0, 4.0)]  # distance 5
        assert disk_interference_graph(locations, 5.0).interferes(0, 1)
        assert not disk_interference_graph(locations, 4.99).interferes(0, 1)

    def test_zero_range_rejected(self):
        with pytest.raises(MarketConfigurationError):
            disk_interference_graph([(0.0, 0.0)], 0.0)

    def test_empty_locations(self):
        graph = disk_interference_graph(np.empty((0, 2)), 1.0)
        assert graph.num_buyers == 0

    def test_bad_location_shape_rejected(self):
        with pytest.raises(MarketConfigurationError):
            disk_interference_graph([(0.0, 0.0, 0.0)], 1.0)

    def test_single_point_graph(self):
        graph = disk_interference_graph([(1.0, 1.0)], 3.0)
        assert graph.num_buyers == 1
        assert graph.num_edges == 0

    def test_coincident_points_interfere(self):
        graph = disk_interference_graph([(2.0, 2.0), (2.0, 2.0)], 0.1)
        assert graph.interferes(0, 1)


class TestGeometricMap:
    def test_larger_range_is_denser(self, rng):
        locations = rng.uniform(0, 10, size=(40, 2))
        imap = build_geometric_interference_map(locations, [0.5, 2.0, 5.0])
        assert imap.num_channels == 3
        edges = [imap[i].num_edges for i in range(3)]
        assert edges[0] <= edges[1] <= edges[2]
        assert edges[2] > edges[0]  # with 40 points this is essentially sure

    def test_edge_subset_monotonicity(self, rng):
        """Every edge of a smaller-range channel appears in a larger one."""
        locations = rng.uniform(0, 10, size=(25, 2))
        imap = build_geometric_interference_map(locations, [1.0, 4.0])
        small, large = imap[0], imap[1]
        for j, k in small.edges():
            assert large.interferes(j, k)

    def test_requires_a_channel(self):
        with pytest.raises(MarketConfigurationError):
            build_geometric_interference_map([(0.0, 0.0)], [])


class TestSparseDiskGraph:
    """The KD-tree builder must produce the *same graph* as the dense one."""

    @pytest.mark.parametrize("transmission_range", [0.5, 2.0, 5.0])
    def test_identical_to_dense_builder(self, rng, transmission_range):
        locations = rng.uniform(0, 10, size=(120, 2))
        dense = disk_interference_graph(locations, transmission_range)
        sparse = sparse_disk_interference_graph(locations, transmission_range)
        assert sparse.num_buyers == dense.num_buyers
        assert sparse.num_edges == dense.num_edges
        for node in range(dense.num_buyers):
            assert sorted(sparse.neighbors(node)) == sorted(
                dense.neighbors(node)
            )

    def test_boundary_distance_included(self):
        # dist == r is an edge under the disk model, both builders.
        locations = [(0.0, 0.0), (2.0, 0.0)]
        assert sparse_disk_interference_graph(locations, 2.0).interferes(0, 1)
        assert not sparse_disk_interference_graph(locations, 1.99).interferes(
            0, 1
        )

    def test_empty_and_invalid_inputs(self):
        assert sparse_disk_interference_graph(
            np.zeros((0, 2)), 1.0
        ).num_buyers == 0
        with pytest.raises(MarketConfigurationError):
            sparse_disk_interference_graph([(0.0, 0.0)], 0.0)
