"""Property-based tests (hypothesis) for the MWIS solvers."""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interference.graph import InterferenceGraph
from repro.interference.mwis import (
    gwmin_lower_bound,
    is_independent_set,
    mwis_exact,
    mwis_greedy_gwmax,
    mwis_greedy_gwmin,
    mwis_greedy_gwmin2,
)


@st.composite
def weighted_graphs(draw, max_nodes: int = 9):
    """Random small graph + positive weights (exact solver stays fast)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    possible_edges = [(j, k) for j in range(n) for k in range(j + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=len(possible_edges))
        if possible_edges
        else st.just([])
    )
    # Weights are either exactly zero or >= 0.01: sub-epsilon weights make
    # "maximality" undecidable in float arithmetic (1.0 + 1e-244 == 1.0),
    # which is a property of IEEE 754, not of the solver.
    weight_strategy = st.one_of(
        st.just(0.0),
        st.floats(
            min_value=0.01, max_value=10.0, allow_nan=False, allow_infinity=False
        ),
    )
    weights = {j: draw(weight_strategy) for j in range(n)}
    return InterferenceGraph(n, edges), weights


@given(weighted_graphs())
@settings(max_examples=150, deadline=None)
def test_greedy_outputs_are_independent_sets(case):
    graph, weights = case
    nodes = range(graph.num_buyers)
    for solver in (mwis_greedy_gwmin, mwis_greedy_gwmin2, mwis_greedy_gwmax):
        assert is_independent_set(graph, solver(graph, weights, nodes))


@given(weighted_graphs())
@settings(max_examples=150, deadline=None)
def test_exact_dominates_every_greedy(case):
    graph, weights = case
    nodes = range(graph.num_buyers)
    exact_value = sum(weights[j] for j in mwis_exact(graph, weights, nodes))
    for solver in (mwis_greedy_gwmin, mwis_greedy_gwmin2, mwis_greedy_gwmax):
        greedy_value = sum(weights[j] for j in solver(graph, weights, nodes))
        assert greedy_value <= exact_value + 1e-9


@given(weighted_graphs())
@settings(max_examples=150, deadline=None)
def test_gwmin_achieves_sakai_bound(case):
    """Sakai et al. Theorem: GWMIN >= sum w(v)/(deg(v)+1)."""
    graph, weights = case
    nodes = range(graph.num_buyers)
    value = sum(weights[j] for j in mwis_greedy_gwmin(graph, weights, nodes))
    assert value >= gwmin_lower_bound(graph, weights, nodes) - 1e-9


@given(weighted_graphs())
@settings(max_examples=150, deadline=None)
def test_gwmin2_achieves_sakai_bound(case):
    """Sakai et al. show GWMIN2 also meets the degree-weighted bound."""
    graph, weights = case
    nodes = range(graph.num_buyers)
    value = sum(weights[j] for j in mwis_greedy_gwmin2(graph, weights, nodes))
    assert value >= gwmin_lower_bound(graph, weights, nodes) - 1e-9


@given(weighted_graphs())
@settings(max_examples=100, deadline=None)
def test_exact_is_maximal(case):
    """No leftover vertex can be added to the exact solution for free."""
    graph, weights = case
    nodes = list(range(graph.num_buyers))
    chosen = set(mwis_exact(graph, weights, nodes))
    for j in nodes:
        if j in chosen:
            continue
        if weights[j] > 0 and not graph.conflicts_with_set(j, chosen):
            raise AssertionError(
                f"vertex {j} (weight {weights[j]}) could extend {sorted(chosen)}"
            )


@given(weighted_graphs(), st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_exact_invariant_under_pool_order(case, rnd):
    """The exact optimum must not depend on candidate enumeration order."""
    graph, weights = case
    nodes = list(range(graph.num_buyers))
    baseline = mwis_exact(graph, weights, nodes)
    shuffled = list(nodes)
    rnd.shuffle(shuffled)
    assert mwis_exact(graph, weights, shuffled) == baseline
